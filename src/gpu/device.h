// The simulated GPU: SMs interpreting PTX-lite warps, an L2 cache, the
// device-memory hierarchy, kernel launch/stream management, performance
// counters, and the PCIe endpoint personality (peer-to-peer BAR aperture
// over device memory).
//
// Timing model (defaults tuned in sys/testbed.cc):
//   - Instruction issue: `issue_cycles` per instruction for a dependent
//     single-warp instruction stream. This deliberately models the LOW
//     single-thread performance the paper keeps pointing at: a lone GPU
//     thread grinding through ibv_post_send's ~442 instructions pays
//     ~10 cycles each, which is where the high GPU-side posting cost in
//     Figs. 4/5 comes from.
//   - Device-memory loads go through the L2 tag model: hits cost
//     `l2_hit_cycles`, misses add `dram_extra_cycles`.
//   - System-memory (and MMIO) accesses cross the PCIe fabric: loads are
//     split transactions (~1.2 us round trip with default links), stores
//     are posted.
//   - Inter-warp issue contention is not modelled; contention appears at
//     the L2/fabric/NIC where the paper's experiments actually stress it.
//
// Coherence: the L2 is tags-only; data is always sampled from the backing
// store at access-completion time. Inbound DMA writes invalidate matching
// L2 lines, so polling loops pay a miss on the first probe after data
// lands - the effect the paper's dev2dev-pollOnGPU variant exploits.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "gpu/counters.h"
#include "gpu/kernel.h"
#include "gpu/l2cache.h"
#include "gpu/warp.h"
#include "mem/memory_domain.h"
#include "pcie/fabric.h"
#include "pcie/p2p.h"
#include "sim/simulation.h"

namespace pg::gpu {

struct GpuConfig {
  SimDuration clock_period = picoseconds(1000);  // 1 GHz
  std::uint32_t issue_cycles = 10;   // dependent-issue interval per instr
  std::uint32_t l2_hit_cycles = 120;
  std::uint32_t dram_extra_cycles = 280;  // added to hit path on miss
  std::uint32_t shared_cycles = 30;
  std::uint32_t atom_cycles = 360;
  std::uint32_t membar_cycles = 180;
  std::uint32_t barrier_cycles = 40;
  std::uint32_t max_inline_steps = 64;   // instrs per scheduler slice
  /// Non-posted PCIe read credits: at most this many system-memory /
  /// MMIO loads in flight GPU-wide. Many warps polling host memory
  /// concurrently serialize here, which is one of the effects that keeps
  /// GPU-controlled message rates below host-controlled ones (Fig. 2).
  std::uint32_t max_outstanding_sysmem_reads = 4;
  /// Extra per-load cost of the zero-copy (host-mapped) read path: GPU
  /// MMU / BAR windowing overhead on top of the raw PCIe round trip.
  /// Kepler-class hardware pays ~1.2 us per host-memory probe; this knob
  /// plus the fabric flight reproduces that.
  SimDuration sysmem_read_extra = nanoseconds(800);
  /// Write-combine flush delay for MMIO stores: a GPU thread's stores to
  /// an uncached BAR page linger in the WC buffer before reaching PCIe.
  SimDuration mmio_store_flush = nanoseconds(400);
  SimDuration launch_overhead = microseconds(6);
  std::uint64_t shared_mem_per_block = 64 * KiB;
  L2Config l2;
  pcie::P2pConfig p2p;
  pcie::LinkConfig link;  // the GPU's PCIe link to the root complex
};

class Gpu : public pcie::Endpoint {
 public:
  /// Constructs the GPU and attaches it to `fabric` (claiming the
  /// GPU-DRAM aperture).
  Gpu(sim::Simulation& sim, pcie::Fabric& fabric, mem::MemoryDomain& memory,
      GpuConfig cfg, std::string name);

  ~Gpu() override;  // out of line: private impl types are incomplete here
  Gpu(const Gpu&) = delete;
  Gpu& operator=(const Gpu&) = delete;

  using DoneFn = std::function<void()>;

  /// Asynchronous kernel launch; `done` fires when the last block
  /// retires. Launch overhead is charged before the first instruction.
  void launch(const KernelLaunch& kl, DoneFn done = {});

  /// Launch into a stream: kernels in the same stream serialize, kernels
  /// in different streams run concurrently (the paper's dev2dev-kernels
  /// message-rate configuration).
  void launch_stream(std::uint32_t stream, const KernelLaunch& kl,
                     DoneFn done = {});

  /// Number of kernels launched but not yet retired.
  std::uint32_t active_kernels() const { return active_kernels_; }

  const PerfCounters& counters() const { return counters_; }
  PerfCounters counters_snapshot() const { return counters_; }
  void reset_counters() { counters_ = PerfCounters{}; }

  L2Cache& l2() { return l2_; }
  pcie::GpuP2pReadServer& p2p_server() { return p2p_; }
  pcie::EndpointId endpoint_id() const { return endpoint_id_; }
  const std::string& name() const { return name_; }

  // --- pcie::Endpoint -------------------------------------------------------
  void inbound_write(mem::Addr addr,
                     std::span<const std::uint8_t> data) override;
  SimTime inbound_read(SimTime arrival, mem::Addr addr,
                       std::span<std::uint8_t> out) override;

 private:
  struct LaunchState;
  struct BlockState;
  struct WarpExec;
  struct StreamState;

  void start_launch(std::shared_ptr<LaunchState> ls);
  void run_warp(std::shared_ptr<WarpExec> w);
  void retire_warp(const std::shared_ptr<WarpExec>& w, SimDuration dt);

  SimDuration cycles(std::uint32_t n) const {
    return static_cast<SimDuration>(n) * cfg_.clock_period;
  }
  SimDuration issue_cost() const { return cycles(cfg_.issue_cycles); }

  /// Issues a system-memory/MMIO read through the non-posted credit gate.
  void sysmem_read(mem::Addr addr, std::uint32_t len,
                   std::function<void(std::vector<std::uint8_t>)> cb);
  void pump_sysmem_reads();

  /// If a message lifecycle is parked under any loaded lane address (a
  /// notification slot, CQE valid word, or the payload's tail), this
  /// load is the poll that detected its arrival: stamp poll_detect and
  /// end the first parked flow found, probing lanes in order. One
  /// deferred-friendly scan per load — whether a key holds a flow is
  /// only knowable at merge time under the sharded engine.
  void flow_poll_detect(const WarpExec& w, unsigned width);
  void flow_poll_detect(mem::Addr addr, unsigned width);

  /// Memory helpers (state access; timing handled by callers).
  std::uint64_t load_backed(const WarpExec& w, mem::Addr addr,
                            unsigned width) const;
  void store_backed(WarpExec& w, mem::Addr addr, unsigned width,
                    std::uint64_t value);

  /// Executes LD for the warp; returns true if the warp was suspended
  /// (continuation scheduled) and the caller must stop the inline slice.
  bool exec_load(const std::shared_ptr<WarpExec>& w, const Decoded& in,
                 SimDuration& dt);
  void exec_store(const std::shared_ptr<WarpExec>& w, const Decoded& in,
                  SimDuration& dt);
  bool exec_atomic(const std::shared_ptr<WarpExec>& w, const Decoded& in,
                   SimDuration& dt);

  sim::Simulation& sim_;
  pcie::Fabric& fabric_;
  mem::MemoryDomain& memory_;
  GpuConfig cfg_;
  std::string name_;
  L2Cache l2_;
  pcie::GpuP2pReadServer p2p_;
  pcie::EndpointId endpoint_id_ = 0;
  PerfCounters counters_;
  std::uint32_t active_kernels_ = 0;
  std::uint64_t next_warp_id_ = 0;
  std::unordered_map<std::uint32_t, std::unique_ptr<StreamState>> streams_;

  struct SysmemReadJob {
    mem::Addr addr;
    std::uint32_t len;
    std::function<void(std::vector<std::uint8_t>)> cb;
  };
  std::uint32_t sysmem_reads_in_flight_ = 0;
  std::deque<SysmemReadJob> sysmem_read_queue_;
};

}  // namespace pg::gpu
