// Kernel launch descriptor.
//
// Register conventions at thread start (mirroring PTX special registers
// and kernel parameter space):
//   r0 = tid.x     (thread index within the block)
//   r1 = ctaid.x   (block index within the grid)
//   r2 = ntid.x    (threads per block)
//   r3 = nctaid.x  (blocks per grid)
//   r4...r4+N-1 = kernel parameters
#pragma once

#include <cstdint>
#include <vector>

#include "gpu/program.h"

namespace pg::gpu {

/// First register used for kernel parameters.
constexpr unsigned kFirstParamReg = 4;
/// Maximum number of 64-bit kernel parameters.
constexpr unsigned kMaxParams = kNumRegs - kFirstParamReg;

struct KernelLaunch {
  const Program* program = nullptr;
  std::uint32_t blocks = 1;
  std::uint32_t threads_per_block = 1;
  std::vector<std::uint64_t> params;
};

}  // namespace pg::gpu
