// Set-associative L2 cache model (tags only; data lives in the backing
// store).
//
// The L2 is the GPU's coherence point for PCIe traffic, which is the
// micro-architectural fact the paper's central optimization rests on:
// polling on a device-memory location can HIT in L2 (cheap), and an
// incoming NIC write invalidates the line so the next poll misses once
// and observes the new value. Polling on system memory can never use the
// L2 at all.
//
// We model tags + LRU only; data always comes from the backing store at
// access time, so coherence is trivially correct and the cache purely
// shapes latency and hit/miss counters.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/address_map.h"

namespace pg::gpu {

struct L2Config {
  std::uint32_t line_size = 128;
  std::uint32_t num_sets = 128;
  std::uint32_t ways = 16;  // 128 * 16 * 128B = 256 KiB (Kepler-class slice)
};

class L2Cache {
 public:
  explicit L2Cache(L2Config cfg);

  /// Looks up the line containing `addr`; allocates on miss.
  /// Returns true on hit.
  bool access(mem::Addr addr, bool is_write);

  /// Invalidates every line overlapping [addr, addr+len) — the DMA-write
  /// coherence action.
  void invalidate_range(mem::Addr addr, std::uint64_t len);

  void invalidate_all();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t invalidations() const { return invalidations_; }
  const L2Config& config() const { return cfg_; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    bool valid = false;
    std::uint64_t lru_stamp = 0;
  };

  std::uint64_t line_addr(mem::Addr addr) const { return addr / cfg_.line_size; }
  std::uint32_t set_of(std::uint64_t line) const {
    return static_cast<std::uint32_t>(line % cfg_.num_sets);
  }

  L2Config cfg_;
  std::vector<Line> lines_;  // num_sets * ways, set-major
  std::uint64_t clock_ = 0;  // LRU stamp source
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t invalidations_ = 0;
};

}  // namespace pg::gpu
