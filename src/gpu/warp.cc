#include "gpu/warp.h"

namespace pg::gpu {

WarpState::WarpState(unsigned active_lanes) {
  assert(active_lanes >= 1 && active_lanes <= kWarpSize);
  mask_ = active_lanes == kWarpSize ? 0xFFFFFFFFu
                                    : ((1u << active_lanes) - 1u);
  // resize() value-initializes each file to zero. Sized to the active
  // count, not kWarpSize: every reg access is bounded by a mask bit, and
  // the tail warp of the device put/get library is usually one lane —
  // no point zeroing 8 KiB of registers it can never name.
  regs_.resize(active_lanes);
}

bool WarpState::maybe_reconverge() {
  if (sync_stack_.empty() || mask_ == 0) return false;
  SyncEntry& top = sync_stack_.back();
  if (pc_ != top.reconv_pc) return false;
  // This fragment arrived at the reconvergence point: park it.
  top.merged |= mask_;
  mask_ = 0;
  next_fragment();
  return true;
}

void WarpState::push_sync(int reconv_pc) {
  sync_stack_.push_back(SyncEntry{reconv_pc, 0, {}});
}

bool WarpState::branch(LaneMask taken, int target) {
  assert((taken & ~mask_) == 0 && "branch decided by inactive lanes");
  if (taken == mask_) {  // uniformly taken
    pc_ = target;
    return false;
  }
  if (taken == 0) {  // uniformly not taken
    ++pc_;
    return false;
  }
  // Divergence: requires an enclosing SSY scope, as on real pre-Volta
  // hardware where the compiler inserts SSY before potentially divergent
  // branches.
  assert(!sync_stack_.empty() &&
         "divergent branch without SSY reconvergence point");
  SyncEntry& top = sync_stack_.back();
  // Fall-through fragment runs later; taken fragment runs now. (The order
  // is arbitrary on hardware too.)
  top.pending.push_back(Fragment{static_cast<LaneMask>(mask_ & ~taken),
                                 pc_ + 1});
  mask_ = taken;
  pc_ = target;
  return true;
}

void WarpState::exit_active() {
  mask_ = 0;
  next_fragment();
}

void WarpState::next_fragment() {
  while (!sync_stack_.empty()) {
    SyncEntry& top = sync_stack_.back();
    if (!top.pending.empty()) {
      const Fragment frag = top.pending.back();
      top.pending.pop_back();
      mask_ = frag.mask;
      pc_ = frag.pc;
      return;
    }
    // All fragments of this scope arrived (or exited): merge and continue
    // after the reconvergence point.
    const LaneMask merged = top.merged;
    const int reconv = top.reconv_pc;
    sync_stack_.pop_back();
    if (merged != 0) {
      mask_ = merged;
      pc_ = reconv;
      return;
    }
    // Everybody exited inside the scope; unwind further.
  }
  // No fragments anywhere: warp is done (mask stays 0).
}

void WarpState::call(int target) {
  assert(call_stack_.size() < kMaxCallDepth && "device call stack overflow");
  call_stack_.push_back(pc_ + 1);
  pc_ = target;
}

void WarpState::ret() {
  assert(!call_stack_.empty() && "RET without CALL");
  pc_ = call_stack_.back();
  call_stack_.pop_back();
}

}  // namespace pg::gpu
