#include "gpu/program.h"

#include <cstdio>

namespace pg::gpu {

const char* op_name(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kMovI: return "movi";
    case Op::kMov: return "mov";
    case Op::kAdd: return "add";
    case Op::kAddI: return "addi";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kMulI: return "muli";
    case Op::kShlI: return "shli";
    case Op::kShrI: return "shri";
    case Op::kAnd: return "and";
    case Op::kAndI: return "andi";
    case Op::kOr: return "or";
    case Op::kOrI: return "ori";
    case Op::kXor: return "xor";
    case Op::kNot: return "not";
    case Op::kBswap32: return "bswap32";
    case Op::kBswap64: return "bswap64";
    case Op::kSetp: return "setp";
    case Op::kSetpI: return "setpi";
    case Op::kBra: return "bra";
    case Op::kSsy: return "ssy";
    case Op::kCall: return "call";
    case Op::kRet: return "ret";
    case Op::kExit: return "exit";
    case Op::kLd: return "ld";
    case Op::kSt: return "st";
    case Op::kAtomAdd: return "atom.add";
    case Op::kAtomExch: return "atom.exch";
    case Op::kMembarSys: return "membar.sys";
    case Op::kBarSync: return "bar.sync";
    case Op::kSreg: return "sreg";
  }
  return "?";
}

const char* cmp_name(Cmp cmp) {
  switch (cmp) {
    case Cmp::kEq: return "eq";
    case Cmp::kNe: return "ne";
    case Cmp::kLt: return "lt";
    case Cmp::kLe: return "le";
    case Cmp::kGt: return "gt";
    case Cmp::kGe: return "ge";
    case Cmp::kLtU: return "ltu";
    case Cmp::kGeU: return "geu";
  }
  return "?";
}

std::string Instr::to_string() const {
  char buf[128];
  switch (op) {
    case Op::kNop:
    case Op::kRet:
    case Op::kExit:
    case Op::kMembarSys:
    case Op::kBarSync:
      std::snprintf(buf, sizeof(buf), "%s", op_name(op));
      break;
    case Op::kMovI:
      std::snprintf(buf, sizeof(buf), "movi r%u, %lld", rd,
                    static_cast<long long>(imm));
      break;
    case Op::kMov:
    case Op::kNot:
    case Op::kBswap32:
    case Op::kBswap64:
      std::snprintf(buf, sizeof(buf), "%s r%u, r%u", op_name(op), rd, ra);
      break;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
      std::snprintf(buf, sizeof(buf), "%s r%u, r%u, r%u", op_name(op), rd, ra,
                    rb);
      break;
    case Op::kAddI:
    case Op::kMulI:
    case Op::kShlI:
    case Op::kShrI:
    case Op::kAndI:
    case Op::kOrI:
      std::snprintf(buf, sizeof(buf), "%s r%u, r%u, %lld", op_name(op), rd, ra,
                    static_cast<long long>(imm));
      break;
    case Op::kSetp:
      std::snprintf(buf, sizeof(buf), "setp.%s r%u, r%u, r%u", cmp_name(cmp),
                    rd, ra, rb);
      break;
    case Op::kSetpI:
      std::snprintf(buf, sizeof(buf), "setpi.%s r%u, r%u, %lld", cmp_name(cmp),
                    rd, ra, static_cast<long long>(imm));
      break;
    case Op::kBra:
      if (cond == BraCond::kAlways) {
        std::snprintf(buf, sizeof(buf), "bra %d", target);
      } else {
        std::snprintf(buf, sizeof(buf), "bra.%s r%u, %d",
                      cond == BraCond::kIfTrue ? "if" : "ifnot", ra, target);
      }
      break;
    case Op::kSsy:
      std::snprintf(buf, sizeof(buf), "ssy %d", target);
      break;
    case Op::kCall:
      std::snprintf(buf, sizeof(buf), "call %d", target);
      break;
    case Op::kLd:
      std::snprintf(buf, sizeof(buf), "ld.u%u r%u, [r%u%+lld]", width * 8, rd,
                    ra, static_cast<long long>(imm));
      break;
    case Op::kSt:
      std::snprintf(buf, sizeof(buf), "st.u%u [r%u%+lld], r%u", width * 8, ra,
                    static_cast<long long>(imm), rb);
      break;
    case Op::kAtomAdd:
    case Op::kAtomExch:
      std::snprintf(buf, sizeof(buf), "%s r%u, [r%u%+lld], r%u", op_name(op),
                    rd, ra, static_cast<long long>(imm), rb);
      break;
    case Op::kSreg:
      std::snprintf(buf, sizeof(buf), "sreg r%u, %u", rd,
                    static_cast<unsigned>(sreg));
      break;
  }
  return buf;
}

namespace {

XOp predecode_op(const Instr& in) {
  const auto offset = [](XOp base, unsigned idx) {
    return static_cast<XOp>(static_cast<unsigned>(base) + idx);
  };
  switch (in.op) {
    case Op::kNop: return XOp::kNop;
    case Op::kMovI: return XOp::kMovI;
    case Op::kMov: return XOp::kMov;
    case Op::kAdd: return XOp::kAdd;
    case Op::kAddI: return XOp::kAddI;
    case Op::kSub: return XOp::kSub;
    case Op::kMul: return XOp::kMul;
    case Op::kMulI: return XOp::kMulI;
    case Op::kShlI: return XOp::kShlI;
    case Op::kShrI: return XOp::kShrI;
    case Op::kAnd: return XOp::kAnd;
    case Op::kAndI: return XOp::kAndI;
    case Op::kOr: return XOp::kOr;
    case Op::kOrI: return XOp::kOrI;
    case Op::kXor: return XOp::kXor;
    case Op::kNot: return XOp::kNot;
    case Op::kBswap32: return XOp::kBswap32;
    case Op::kBswap64: return XOp::kBswap64;
    case Op::kSetp:
      return offset(XOp::kSetpEq, static_cast<unsigned>(in.cmp));
    case Op::kSetpI:
      return offset(XOp::kSetpEqI, static_cast<unsigned>(in.cmp));
    case Op::kSreg:
      return offset(XOp::kSregTid, static_cast<unsigned>(in.sreg));
    case Op::kBra:
      return offset(XOp::kBraAlways, static_cast<unsigned>(in.cond));
    case Op::kSsy: return XOp::kSsy;
    case Op::kCall: return XOp::kCall;
    case Op::kRet: return XOp::kRet;
    case Op::kExit: return XOp::kExit;
    case Op::kMembarSys: return XOp::kMembarSys;
    case Op::kBarSync: return XOp::kBarSync;
    case Op::kLd: return XOp::kLd;
    case Op::kSt: return XOp::kSt;
    case Op::kAtomAdd: return XOp::kAtomAdd;
    case Op::kAtomExch: return XOp::kAtomExch;
  }
  return XOp::kNop;
}

}  // namespace

const std::vector<Decoded>& Program::decoded() const {
  if (decoded_.size() == code_.size()) return decoded_;
  decoded_.clear();
  decoded_.reserve(code_.size());
  for (const Instr& in : code_) {
    Decoded d;
    d.op = predecode_op(in);
    d.rd = in.rd;
    d.ra = in.ra;
    d.rb = in.rb;
    d.width = in.width;
    d.target = in.target;
    d.imm = static_cast<std::uint64_t>(in.imm);
    if (in.op == Op::kShlI || in.op == Op::kShrI) d.imm &= 63;
    decoded_.push_back(d);
  }
  return decoded_;
}

Status Program::validate() const {
  if (code_.empty()) {
    return invalid_argument("program '" + name_ + "' is empty");
  }
  bool has_exit = false;
  for (std::size_t i = 0; i < code_.size(); ++i) {
    const Instr& in = code_[i];
    if (in.op == Op::kExit) has_exit = true;
    if (in.op == Op::kBra || in.op == Op::kSsy || in.op == Op::kCall) {
      if (in.target < 0 ||
          static_cast<std::size_t>(in.target) >= code_.size()) {
        return out_of_range("program '" + name_ + "': instruction " +
                            std::to_string(i) + " targets out of range");
      }
    }
    if (is_memory_op(in.op) && !valid_width(in.width)) {
      return invalid_argument("program '" + name_ + "': instruction " +
                              std::to_string(i) + " has illegal width");
    }
    if (in.rd >= kNumRegs || in.ra >= kNumRegs || in.rb >= kNumRegs) {
      return invalid_argument("program '" + name_ + "': instruction " +
                              std::to_string(i) + " uses illegal register");
    }
  }
  if (!has_exit) {
    return failed_precondition("program '" + name_ + "' has no EXIT");
  }
  return Status::ok();
}

std::string Program::disassemble() const {
  std::string out = name_ + ":\n";
  char line[160];
  for (std::size_t i = 0; i < code_.size(); ++i) {
    std::snprintf(line, sizeof(line), "%4zu: %s\n", i,
                  code_[i].to_string().c_str());
    out += line;
  }
  return out;
}

}  // namespace pg::gpu
