// Fluent builder for PTX-lite programs.
//
// Device routines are composed in C++ through this assembler; labels are
// symbolic and fixed up at finish(). Reusable routine fragments (the
// device-side put/get library) are emitted by functions that take an
// Assembler& and append their body, mirroring how device functions are
// inlined by a real GPU toolchain, or emitted once and reached via
// call()/ret() for subroutine-style linking.
#pragma once

#include <cassert>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "gpu/program.h"

namespace pg::gpu {

/// Typed register name, so routine signatures read like code.
struct Reg {
  std::uint8_t index;
  constexpr explicit Reg(unsigned i) : index(static_cast<std::uint8_t>(i)) {
  }
};

class Assembler {
 public:
  explicit Assembler(std::string program_name)
      : name_(std::move(program_name)) {}

  // --- labels ---------------------------------------------------------------

  /// Declares (or references) a label; bind it later with bind().
  /// Labels are resolved at finish().
  std::string fresh_label(const std::string& stem);

  /// Binds `label` to the next emitted instruction.
  Assembler& bind(const std::string& label);

  // --- instruction emitters ---------------------------------------------------

  Assembler& nop();
  Assembler& movi(Reg rd, std::int64_t imm);
  Assembler& mov(Reg rd, Reg ra);
  Assembler& add(Reg rd, Reg ra, Reg rb);
  Assembler& addi(Reg rd, Reg ra, std::int64_t imm);
  Assembler& sub(Reg rd, Reg ra, Reg rb);
  Assembler& mul(Reg rd, Reg ra, Reg rb);
  Assembler& muli(Reg rd, Reg ra, std::int64_t imm);
  Assembler& shli(Reg rd, Reg ra, std::int64_t imm);
  Assembler& shri(Reg rd, Reg ra, std::int64_t imm);
  Assembler& and_(Reg rd, Reg ra, Reg rb);
  Assembler& andi(Reg rd, Reg ra, std::int64_t imm);
  Assembler& or_(Reg rd, Reg ra, Reg rb);
  Assembler& ori(Reg rd, Reg ra, std::int64_t imm);
  Assembler& xor_(Reg rd, Reg ra, Reg rb);
  Assembler& not_(Reg rd, Reg ra);
  Assembler& bswap32(Reg rd, Reg ra);
  Assembler& bswap64(Reg rd, Reg ra);
  Assembler& setp(Cmp cmp, Reg rd, Reg ra, Reg rb);
  Assembler& setpi(Cmp cmp, Reg rd, Reg ra, std::int64_t imm);

  Assembler& bra(const std::string& label);
  Assembler& bra_if(Reg ra, const std::string& label);
  Assembler& bra_ifnot(Reg ra, const std::string& label);
  Assembler& ssy(const std::string& label);
  Assembler& call(const std::string& label);
  Assembler& ret();
  Assembler& exit();

  Assembler& ld(Reg rd, Reg addr, std::int64_t offset = 0, unsigned width = 8);
  Assembler& st(Reg addr, Reg value, std::int64_t offset = 0,
                unsigned width = 8);
  Assembler& atom_add(Reg rd, Reg addr, Reg value, std::int64_t offset = 0);
  Assembler& atom_exch(Reg rd, Reg addr, Reg value, std::int64_t offset = 0);

  Assembler& membar_sys();
  Assembler& bar_sync();
  Assembler& sreg(Reg rd, Sreg which);

  /// Number of instructions emitted so far.
  std::size_t size() const { return code_.size(); }

  /// Resolves labels and returns the validated program.
  Result<Program> finish();

 private:
  Assembler& emit(Instr in);
  std::int32_t label_ref(const std::string& label);

  std::string name_;
  std::vector<Instr> code_;
  std::unordered_map<std::string, std::int32_t> bound_;  // label -> pc
  // Fixups: (instruction index, label).
  std::vector<std::pair<std::size_t, std::string>> fixups_;
  std::uint64_t fresh_counter_ = 0;
};

}  // namespace pg::gpu
