// GPU performance counters, mirroring the metrics in the paper's
// Tables I and II.
//
// Granularity conventions follow the paper's:
//   - system-memory reads/writes are counted as 32-byte transactions,
//   - global (device) memory 64-bit accesses are counted per access,
//   - "memory accesses (r/w)" counts executed LD/ST per active thread,
//   - "instructions executed" counts retired instructions per active
//     thread (one warp instruction on N active lanes retires N).
#pragma once

#include <cstdint>
#include <string>

namespace pg::gpu {

struct PerfCounters {
  std::uint64_t instructions_executed = 0;
  std::uint64_t memory_accesses = 0;

  std::uint64_t sysmem_read_transactions = 0;   // 32B granules
  std::uint64_t sysmem_write_transactions = 0;  // 32B granules

  std::uint64_t globmem_read64 = 0;   // 64-bit device-memory loads
  std::uint64_t globmem_write64 = 0;  // 64-bit device-memory stores
  std::uint64_t globmem_read_other = 0;
  std::uint64_t globmem_write_other = 0;

  std::uint64_t l2_read_requests = 0;
  std::uint64_t l2_read_hits = 0;
  std::uint64_t l2_read_misses = 0;
  std::uint64_t l2_write_requests = 0;

  std::uint64_t shared_reads = 0;
  std::uint64_t shared_writes = 0;

  std::uint64_t branches = 0;
  std::uint64_t divergent_branches = 0;

  std::uint64_t warps_launched = 0;
  std::uint64_t blocks_launched = 0;
  std::uint64_t kernels_launched = 0;

  PerfCounters operator-(const PerfCounters& rhs) const {
    PerfCounters d = *this;
    d.instructions_executed -= rhs.instructions_executed;
    d.memory_accesses -= rhs.memory_accesses;
    d.sysmem_read_transactions -= rhs.sysmem_read_transactions;
    d.sysmem_write_transactions -= rhs.sysmem_write_transactions;
    d.globmem_read64 -= rhs.globmem_read64;
    d.globmem_write64 -= rhs.globmem_write64;
    d.globmem_read_other -= rhs.globmem_read_other;
    d.globmem_write_other -= rhs.globmem_write_other;
    d.l2_read_requests -= rhs.l2_read_requests;
    d.l2_read_hits -= rhs.l2_read_hits;
    d.l2_read_misses -= rhs.l2_read_misses;
    d.l2_write_requests -= rhs.l2_write_requests;
    d.shared_reads -= rhs.shared_reads;
    d.shared_writes -= rhs.shared_writes;
    d.branches -= rhs.branches;
    d.divergent_branches -= rhs.divergent_branches;
    d.warps_launched -= rhs.warps_launched;
    d.blocks_launched -= rhs.blocks_launched;
    d.kernels_launched -= rhs.kernels_launched;
    return d;
  }

  /// Invariants a healthy counter block maintains; asserted in tests.
  bool consistent() const {
    return l2_read_hits + l2_read_misses == l2_read_requests &&
           l2_read_hits <= l2_read_requests &&
           memory_accesses <= instructions_executed;
  }

  /// Multi-line table in the format of the paper's Table I / II.
  std::string to_table(const std::string& title) const;
};

}  // namespace pg::gpu
