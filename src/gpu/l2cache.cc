#include "gpu/l2cache.h"

#include <cassert>

#include "common/bitops.h"

namespace pg::gpu {

L2Cache::L2Cache(L2Config cfg) : cfg_(cfg) {
  assert(is_power_of_two(cfg_.line_size));
  lines_.resize(static_cast<std::size_t>(cfg_.num_sets) * cfg_.ways);
}

bool L2Cache::access(mem::Addr addr, bool is_write) {
  const std::uint64_t line = line_addr(addr);
  const std::uint32_t set = set_of(line);
  Line* slot = &lines_[static_cast<std::size_t>(set) * cfg_.ways];
  Line* victim = slot;
  ++clock_;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Line& candidate = slot[w];
    if (candidate.valid && candidate.tag == line) {
      candidate.lru_stamp = clock_;
      ++hits_;
      return true;
    }
    if (!candidate.valid) {
      victim = &candidate;
    } else if (victim->valid && candidate.lru_stamp < victim->lru_stamp) {
      victim = &candidate;
    }
  }
  ++misses_;
  // Allocate on both read and write misses (write-allocate keeps
  // poll-after-own-store hitting).
  (void)is_write;
  victim->valid = true;
  victim->tag = line;
  victim->lru_stamp = clock_;
  return false;
}

void L2Cache::invalidate_range(mem::Addr addr, std::uint64_t len) {
  if (len == 0) return;
  const std::uint64_t first = line_addr(addr);
  const std::uint64_t last = line_addr(addr + len - 1);
  for (std::uint64_t line = first; line <= last; ++line) {
    const std::uint32_t set = set_of(line);
    Line* slot = &lines_[static_cast<std::size_t>(set) * cfg_.ways];
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
      if (slot[w].valid && slot[w].tag == line) {
        slot[w].valid = false;
        ++invalidations_;
      }
    }
  }
}

void L2Cache::invalidate_all() {
  for (Line& line : lines_) {
    if (line.valid) {
      line.valid = false;
      ++invalidations_;
    }
  }
}

}  // namespace pg::gpu
