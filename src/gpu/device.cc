#include "gpu/device.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/bitops.h"
#include "common/log.h"
#include "obs/flow.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pg::gpu {

using mem::Addr;
using mem::AddressMap;
using mem::Space;

namespace {

/// Sorts and deduplicates (used for transaction/sector coalescing).
void unique_sorted(std::vector<std::uint64_t>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

std::uint64_t sign_extend_none(std::uint64_t raw, unsigned width) {
  // Loads are zero-extended (PTX ld.uN semantics).
  switch (width) {
    case 1: return raw & 0xFFull;
    case 2: return raw & 0xFFFFull;
    case 4: return raw & 0xFFFFFFFFull;
    default: return raw;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Internal structures.

struct Gpu::LaunchState {
  KernelLaunch kl;
  const Decoded* code = nullptr;  // predecoded stream (owned by Program)
  DoneFn done;
  std::uint32_t blocks_remaining = 0;
  SimTime t_launch = 0;  // host-side launch time (observability span)
};

struct Gpu::BlockState {
  std::shared_ptr<LaunchState> launch;
  std::uint32_t block_index = 0;
  std::uint32_t warps_alive = 0;
  std::vector<std::shared_ptr<WarpExec>> barrier_parked;
  std::unique_ptr<mem::SparseMemory> shared;
};

struct Gpu::WarpExec {
  explicit WarpExec(unsigned lanes) : state(lanes) {}
  WarpState state;
  std::shared_ptr<BlockState> block;
  std::uint32_t warp_in_block = 0;
  std::uint64_t warp_global_id = 0;

  struct LaneAccess {
    unsigned lane;
    mem::Addr addr;
    std::uint64_t value = 0;  // store data
  };
  // Per-warp scratch for gathering lane accesses and coalescing sectors.
  // Reused across instructions so the steady-state interpreter does not
  // allocate. Safe for deferred reads: memory ops that schedule a
  // continuation (global/sysmem loads, atomics) park the warp until the
  // continuation runs, so the scratch cannot be clobbered meanwhile.
  // Posted stores copy what they need instead.
  std::vector<LaneAccess> scratch;
  std::vector<std::uint64_t> sectors;
};

struct Gpu::StreamState {
  bool busy = false;
  std::deque<std::function<void()>> queue;
};

// ---------------------------------------------------------------------------
// Construction and launches.

Gpu::~Gpu() = default;

Gpu::Gpu(sim::Simulation& sim, pcie::Fabric& fabric, mem::MemoryDomain& memory,
         GpuConfig cfg, std::string name)
    : sim_(sim),
      fabric_(fabric),
      memory_(memory),
      cfg_(cfg),
      name_(std::move(name)),
      l2_(cfg.l2),
      p2p_(cfg.p2p) {
  endpoint_id_ = fabric_.attach(name_, this, cfg_.link);
  fabric_.claim_range(endpoint_id_, AddressMap::kGpuDramBase,
                      AddressMap::kGpuDramSize);
}

void Gpu::launch(const KernelLaunch& kl, DoneFn done) {
  assert(kl.program != nullptr);
  assert(kl.blocks >= 1 && kl.threads_per_block >= 1);
  assert(kl.params.size() <= kMaxParams);
  ++active_kernels_;
  ++counters_.kernels_launched;
  auto ls = std::make_shared<LaunchState>();
  ls->kl = kl;
  // Predecode once per launch; repeated launches of the same Program hit
  // the cache. The vector is stable, so the raw pointer stays valid.
  ls->code = kl.program->decoded().data();
  ls->done = std::move(done);
  ls->blocks_remaining = kl.blocks;
  ls->t_launch = sim_.now();
  sim_.schedule(cfg_.launch_overhead, [this, ls] { start_launch(ls); });
}

void Gpu::launch_stream(std::uint32_t stream, const KernelLaunch& kl,
                        DoneFn done) {
  auto& slot = streams_[stream];
  if (!slot) slot = std::make_unique<StreamState>();
  StreamState* st = slot.get();
  auto run = [this, kl, done = std::move(done), st]() mutable {
    launch(kl, [this, done = std::move(done), st]() {
      if (done) done();
      if (st->queue.empty()) {
        st->busy = false;
      } else {
        auto next = std::move(st->queue.front());
        st->queue.pop_front();
        next();
      }
    });
  };
  if (st->busy) {
    st->queue.push_back(std::move(run));
  } else {
    st->busy = true;
    run();
  }
}

void Gpu::start_launch(std::shared_ptr<LaunchState> ls) {
  const KernelLaunch& kl = ls->kl;
  for (std::uint32_t b = 0; b < kl.blocks; ++b) {
    auto block = std::make_shared<BlockState>();
    block->launch = ls;
    block->block_index = b;
    block->shared =
        std::make_unique<mem::SparseMemory>(cfg_.shared_mem_per_block);
    const std::uint32_t warps =
        static_cast<std::uint32_t>(div_ceil(kl.threads_per_block, kWarpSize));
    block->warps_alive = warps;
    ++counters_.blocks_launched;
    for (std::uint32_t wi = 0; wi < warps; ++wi) {
      const unsigned lanes = std::min<std::uint32_t>(
          kWarpSize, kl.threads_per_block - wi * kWarpSize);
      auto w = std::make_shared<WarpExec>(lanes);
      w->block = block;
      w->warp_in_block = wi;
      w->warp_global_id = next_warp_id_++;
      ++counters_.warps_launched;
      // Initialize registers per lane.
      for (unsigned lane = 0; lane < lanes; ++lane) {
        w->state.set_reg(lane, 0, wi * kWarpSize + lane);  // tid.x
        w->state.set_reg(lane, 1, b);                      // ctaid.x
        w->state.set_reg(lane, 2, kl.threads_per_block);   // ntid.x
        w->state.set_reg(lane, 3, kl.blocks);              // nctaid.x
        for (std::size_t p = 0; p < kl.params.size(); ++p) {
          w->state.set_reg(lane, kFirstParamReg + static_cast<unsigned>(p),
                           kl.params[p]);
        }
      }
      sim_.schedule(0, [this, w] { run_warp(w); });
    }
  }
}

void Gpu::retire_warp(const std::shared_ptr<WarpExec>& w, SimDuration dt) {
  BlockState& block = *w->block;
  assert(block.warps_alive > 0);
  --block.warps_alive;
  // A warp exiting may complete a barrier the remaining warps wait on
  // (CUDA forbids this; we resolve it rather than deadlock, and warn).
  if (block.warps_alive > 0 &&
      block.barrier_parked.size() == block.warps_alive) {
    PG_WARN("gpu", "block %u: warp exited while siblings wait at barrier",
            block.block_index);
    auto parked = std::move(block.barrier_parked);
    block.barrier_parked.clear();
    sim_.schedule(dt + cycles(cfg_.barrier_cycles), [this, parked] {
      for (const auto& p : parked) run_warp(p);
    });
  }
  if (block.warps_alive == 0) {
    auto ls = block.launch;
    assert(ls->blocks_remaining > 0);
    --ls->blocks_remaining;
    if (ls->blocks_remaining == 0) {
      sim_.schedule(dt, [this, ls] {
        assert(active_kernels_ > 0);
        --active_kernels_;
        if (obs::metrics()) {
          obs::count("gpu.kernels");
          obs::observe("gpu.kernel_ns",
                       static_cast<std::uint64_t>(
                           to_ns(sim_.now() - ls->t_launch)));
        }
        if (obs::enabled()) {
          obs::span(name_.c_str(), "kernel", "kernel", ls->t_launch,
                    sim_.now(),
                    {{"blocks", ls->kl.blocks},
                     {"threads_per_block", ls->kl.threads_per_block}});
        }
        if (ls->done) ls->done();
      });
    }
  }
}

// ---------------------------------------------------------------------------
// Backing-store access helpers.

namespace {

/// Width-dispatched, zero-extending load from a SparseMemory (the
/// in-page typed fast path; ld.uN semantics).
std::uint64_t sparse_load(const mem::SparseMemory& m, std::uint64_t off,
                          unsigned width) {
  switch (width) {
    case 1: return m.read_u8(off);
    case 2: return m.read_u16(off);
    case 4: return m.read_u32(off);
    default: return m.read_u64(off);
  }
}

void sparse_store(mem::SparseMemory& m, std::uint64_t off, unsigned width,
                  std::uint64_t v) {
  switch (width) {
    case 1: m.write_u8(off, static_cast<std::uint8_t>(v)); break;
    case 2: m.write_u16(off, static_cast<std::uint16_t>(v)); break;
    case 4: m.write_u32(off, static_cast<std::uint32_t>(v)); break;
    default: m.write_u64(off, v); break;
  }
}

}  // namespace

std::uint64_t Gpu::load_backed(const WarpExec& w, Addr addr,
                               unsigned width) const {
  if (AddressMap::classify(addr) == Space::kGpuShared) {
    const std::uint64_t offset = addr - AddressMap::kGpuSharedBase;
    assert(offset + width <= cfg_.shared_mem_per_block &&
           "shared-memory access out of block allocation");
    return sparse_load(*w.block->shared, offset, width);
  }
  return memory_.load_scalar(addr, width);
}

void Gpu::store_backed(WarpExec& w, Addr addr, unsigned width,
                       std::uint64_t value) {
  if (AddressMap::classify(addr) == Space::kGpuShared) {
    const std::uint64_t offset = addr - AddressMap::kGpuSharedBase;
    assert(offset + width <= cfg_.shared_mem_per_block &&
           "shared-memory access out of block allocation");
    sparse_store(*w.block->shared, offset, width, value);
    return;
  }
  memory_.store_scalar(addr, width, value);
}

// ---------------------------------------------------------------------------
// Memory instruction execution.

void Gpu::flow_poll_detect(const WarpExec& w, unsigned width) {
  // Producers park lifecycles under either the polled word's base
  // address (notification slots, CQE valid words) or the last written
  // payload byte (tag polls load the tail, so base + width - 1). The
  // probe order — lanes in order, base before tail — fixes which flow a
  // multi-lane poll detects when several are parked.
  if (obs::flows() == nullptr) return;
  std::uint64_t keys[2 * kWarpSize];
  std::size_t n = 0;
  for (const auto& la : w.scratch) {
    keys[n++] = obs::flow_key(&fabric_, la.addr);
    keys[n++] = obs::flow_key(&fabric_, la.addr + width - 1);
  }
  obs::flow_poll_scan(name_.c_str(), sim_.now(), keys, n);
}

void Gpu::flow_poll_detect(mem::Addr addr, unsigned width) {
  if (obs::flows() == nullptr) return;
  const std::uint64_t keys[2] = {
      obs::flow_key(&fabric_, addr),
      obs::flow_key(&fabric_, addr + width - 1)};
  obs::flow_poll_scan(name_.c_str(), sim_.now(), keys, 2);
}

bool Gpu::exec_load(const std::shared_ptr<WarpExec>& w, const Decoded& in,
                    SimDuration& dt) {
  using LaneAccess = WarpExec::LaneAccess;
  WarpState& ws = w->state;
  std::vector<LaneAccess>& lanes = w->scratch;
  lanes.clear();
  ws.for_each_active([&](unsigned lane) {
    lanes.push_back({lane, ws.reg(lane, in.ra) + in.imm});
  });
  counters_.memory_accesses += lanes.size();
  const Space space = AddressMap::classify(lanes.front().addr);
#ifndef NDEBUG
  for (const auto& la : lanes) {
    assert(AddressMap::classify(la.addr) == space &&
           "warp load straddles address spaces");
  }
#endif

  if (space == Space::kGpuShared) {
    counters_.shared_reads += lanes.size();
    for (const auto& la : lanes) {
      ws.set_reg(la.lane, in.rd, load_backed(*w, la.addr, in.width));
    }
    dt += cycles(cfg_.shared_cycles);
    ws.set_pc(ws.pc() + 1);
    return false;
  }

  if (space == Space::kGpuDram) {
    // Coalesce into unique 32B sectors; each is one L2 read request.
    std::vector<std::uint64_t>& sectors = w->sectors;
    sectors.clear();
    for (const auto& la : lanes) {
      if (in.width == 8) {
        ++counters_.globmem_read64;
      } else {
        ++counters_.globmem_read_other;
      }
      const std::uint64_t first = la.addr / 32;
      const std::uint64_t last = (la.addr + in.width - 1) / 32;
      for (std::uint64_t s = first; s <= last; ++s) sectors.push_back(s);
    }
    unique_sorted(sectors);
    bool all_hit = true;
    for (std::uint64_t s : sectors) {
      const bool hit = l2_.access(s * 32, /*is_write=*/false);
      ++counters_.l2_read_requests;
      if (hit) {
        ++counters_.l2_read_hits;
      } else {
        ++counters_.l2_read_misses;
        all_hit = false;
      }
    }
    const SimDuration latency =
        cycles(cfg_.l2_hit_cycles + (all_hit ? 0 : cfg_.dram_extra_cycles));
    if (obs::metrics()) {
      obs::count("gpu.l2_loads");
      if (!all_hit) obs::count("gpu.l2_load_misses");
    }
    if (obs::enabled()) {
      obs::instant(name_.c_str(), "poll", "l2-read", sim_.now() + dt,
                   {{"addr", lanes.front().addr}, {"hit", all_hit}});
    }
    // Sample at completion: NIC writes landing during the access latency
    // are observed, matching hardware where the L2 serves the request.
    // The warp is parked, so the continuation reads w->scratch in place.
    sim_.schedule(dt + latency, [this, w, &in] {
      const std::vector<LaneAccess>& lns = w->scratch;
      // Coalesced fast path: when every active lane hits one backing
      // page (the common case: warp-uniform polls and unit-stride
      // accesses), resolve the page once instead of per lane. Data-only;
      // every counter was already updated at issue.
      Addr lo = lns.front().addr;
      Addr hi = lo;
      for (const auto& la : lns) {
        lo = std::min(lo, la.addr);
        hi = std::max(hi, la.addr);
      }
      const std::uint64_t off = lo - AddressMap::kGpuDramBase;
      const std::uint64_t len = hi + in.width - lo;
      const mem::SparseMemory& dram = memory_.gpu_dram();
      if (off / mem::SparseMemory::kPageSize ==
          (off + len - 1) / mem::SparseMemory::kPageSize) {
        if (const std::uint8_t* base = dram.span_in_page(off, len)) {
          for (const auto& la : lns) {
            std::uint64_t v = 0;
            std::memcpy(&v, base + (la.addr - lo), in.width);
            w->state.set_reg(la.lane, in.rd, sign_extend_none(v, in.width));
          }
        } else {  // page absent: reads as zero
          for (const auto& la : lns) w->state.set_reg(la.lane, in.rd, 0);
        }
      } else {
        for (const auto& la : lns) {
          w->state.set_reg(la.lane, in.rd, load_backed(*w, la.addr, in.width));
        }
      }
      // The sample above reflects every write landed by now, so if a
      // lifecycle is parked under a polled lane this is the load that
      // detected it.
      flow_poll_detect(*w, in.width);
      w->state.set_pc(w->state.pc() + 1);
      run_warp(w);
    });
    return true;
  }

  // System memory or MMIO: split transactions over PCIe.
  {
    std::vector<std::uint64_t>& sectors = w->sectors;
    sectors.clear();
    for (const auto& la : lanes) {
      sectors.push_back(la.addr / 32);
      sectors.push_back((la.addr + in.width - 1) / 32);
    }
    unique_sorted(sectors);
    counters_.sysmem_read_transactions += sectors.size();
    if (obs::metrics()) {
      obs::count("gpu.sysmem_loads");
    }
    if (obs::enabled()) {
      obs::instant(name_.c_str(), "poll", "sysmem-read", sim_.now() + dt,
                   {{"addr", lanes.front().addr}, {"lanes", lanes.size()}});
    }
    auto pending = std::make_shared<std::size_t>(lanes.size());
    // Zero-copy path overhead (GPU MMU / BAR window) before the request
    // reaches the fabric. The warp is parked; w->scratch stays valid
    // until the last per-lane completion below.
    sim_.schedule(dt + cfg_.sysmem_read_extra, [this, w, &in, pending] {
      for (const auto& la : w->scratch) {
        sysmem_read(
            la.addr, in.width,
            [this, w, lane = la.lane, addr = la.addr, &in,
             pending](std::vector<std::uint8_t> data) {
              std::uint64_t v = 0;
              std::memcpy(&v, data.data(),
                          std::min<std::size_t>(8, data.size()));
              w->state.set_reg(lane, in.rd, sign_extend_none(v, in.width));
              // PCIe-read polling (the paper's direct mode): this
              // completion samples host memory, so it detects any
              // lifecycle parked under the polled address.
              flow_poll_detect(addr, in.width);
              if (--*pending == 0) {
                w->state.set_pc(w->state.pc() + 1);
                run_warp(w);
              }
            });
      }
    });
    return true;
  }
}

void Gpu::exec_store(const std::shared_ptr<WarpExec>& w, const Decoded& in,
                     SimDuration& dt) {
  using LaneAccess = WarpExec::LaneAccess;
  WarpState& ws = w->state;
  // Stores do not park the warp (they are posted), so the deferred apply
  // below must own its lane data instead of borrowing w->scratch: a later
  // instruction in the same inline slice could clobber the scratch before
  // the posted write lands. Single-lane stores (the device library's
  // steady state) capture the one access by value - no allocation.
  std::vector<LaneAccess>& lanes = w->scratch;
  lanes.clear();
  ws.for_each_active([&](unsigned lane) {
    lanes.push_back(
        {lane, ws.reg(lane, in.ra) + in.imm, ws.reg(lane, in.rb)});
  });
  counters_.memory_accesses += lanes.size();
  const Space space = AddressMap::classify(lanes.front().addr);
#ifndef NDEBUG
  for (const auto& la : lanes) {
    assert(AddressMap::classify(la.addr) == space &&
           "warp store straddles address spaces");
  }
#endif

  if (space == Space::kGpuShared) {
    counters_.shared_writes += lanes.size();
    for (const auto& la : lanes) {
      store_backed(*w, la.addr, in.width, la.value);
    }
    ws.set_pc(ws.pc() + 1);
    return;
  }

  if (space == Space::kGpuDram) {
    std::vector<std::uint64_t>& sectors = w->sectors;
    sectors.clear();
    for (const auto& la : lanes) {
      if (in.width == 8) {
        ++counters_.globmem_write64;
      } else {
        ++counters_.globmem_write_other;
      }
      const std::uint64_t first = la.addr / 32;
      const std::uint64_t last = (la.addr + in.width - 1) / 32;
      for (std::uint64_t s = first; s <= last; ++s) sectors.push_back(s);
    }
    unique_sorted(sectors);
    counters_.l2_write_requests += sectors.size();
    for (std::uint64_t s : sectors) {
      (void)l2_.access(s * 32, /*is_write=*/true);  // write-allocate
    }
    // Posted into the memory pipeline: visible after the issue slice.
    const unsigned width = in.width;
    if (lanes.size() == 1) {
      const LaneAccess la = lanes.front();
      sim_.schedule(dt, [this, w, la, width] {
        store_backed(*w, la.addr, width, la.value);
      });
    } else {
      sim_.schedule(dt, [this, w, lns = std::vector<LaneAccess>(lanes),
                         width] {
        for (const auto& la : lns) {
          store_backed(*w, la.addr, width, la.value);
        }
      });
    }
    ws.set_pc(ws.pc() + 1);
    return;
  }

  // System memory or MMIO: posted PCIe writes (this is how a GPU thread
  // posts an EXTOLL WR to the BAR or rings the IB doorbell).
  {
    std::vector<std::uint64_t>& sectors = w->sectors;
    sectors.clear();
    for (const auto& la : lanes) {
      sectors.push_back(la.addr / 32);
      sectors.push_back((la.addr + in.width - 1) / 32);
    }
    unique_sorted(sectors);
    counters_.sysmem_write_transactions += sectors.size();
    const unsigned width = in.width;
    // Stores to MMIO (NIC BAR / doorbells) sit in the write-combine
    // buffer before flushing to PCIe; plain host-memory stores post
    // immediately.
    const SimDuration flush =
        AddressMap::is_mmio(lanes.front().addr) ? cfg_.mmio_store_flush : 0;
    if (lanes.size() == 1) {
      const LaneAccess la = lanes.front();
      sim_.schedule(dt + flush, [this, la, width] {
        std::vector<std::uint8_t> bytes(width);
        std::memcpy(bytes.data(), &la.value, width);
        fabric_.write(endpoint_id_, la.addr, std::move(bytes));
      });
    } else {
      sim_.schedule(dt + flush, [this, lns = std::vector<LaneAccess>(lanes),
                                 width] {
        for (const auto& la : lns) {
          std::vector<std::uint8_t> bytes(width);
          std::memcpy(bytes.data(), &la.value, width);
          fabric_.write(endpoint_id_, la.addr, std::move(bytes));
        }
      });
    }
    ws.set_pc(ws.pc() + 1);
    return;
  }
}

bool Gpu::exec_atomic(const std::shared_ptr<WarpExec>& w, const Decoded& in,
                      SimDuration& dt) {
  WarpState& ws = w->state;
  std::vector<WarpExec::LaneAccess>& lanes = w->scratch;
  lanes.clear();
  ws.for_each_active([&](unsigned lane) {
    lanes.push_back(
        {lane, ws.reg(lane, in.ra) + in.imm, ws.reg(lane, in.rb)});
  });
  counters_.memory_accesses += lanes.size();
  assert(AddressMap::classify(lanes.front().addr) == Space::kGpuDram &&
         "atomics are supported on device global memory only");
  counters_.globmem_read64 += lanes.size();
  counters_.globmem_write64 += lanes.size();
  std::vector<std::uint64_t>& sectors = w->sectors;
  sectors.clear();
  for (const auto& la : lanes) sectors.push_back(la.addr / 32);
  unique_sorted(sectors);
  counters_.l2_write_requests += sectors.size();
  for (std::uint64_t s : sectors) (void)l2_.access(s * 32, true);

  const bool is_add = in.op == XOp::kAtomAdd;
  // The read-modify-write executes atomically inside one event at
  // completion time; lanes apply in lane order (hardware serializes
  // same-address lane conflicts too). The warp is parked, so the
  // continuation reads w->scratch in place.
  sim_.schedule(dt + cycles(cfg_.atom_cycles), [this, w, &in, is_add] {
    for (const auto& la : w->scratch) {
      const std::uint64_t old = load_backed(*w, la.addr, 8);
      const std::uint64_t next = is_add ? old + la.value : la.value;
      store_backed(*w, la.addr, 8, next);
      w->state.set_reg(la.lane, in.rd, old);
    }
    w->state.set_pc(w->state.pc() + 1);
    run_warp(w);
  });
  return true;
}

// ---------------------------------------------------------------------------
// Non-posted read credit gate.

void Gpu::sysmem_read(Addr addr, std::uint32_t len,
                      std::function<void(std::vector<std::uint8_t>)> cb) {
  sysmem_read_queue_.push_back(SysmemReadJob{addr, len, std::move(cb)});
  pump_sysmem_reads();
}

void Gpu::pump_sysmem_reads() {
  while (sysmem_reads_in_flight_ < cfg_.max_outstanding_sysmem_reads &&
         !sysmem_read_queue_.empty()) {
    SysmemReadJob job = std::move(sysmem_read_queue_.front());
    sysmem_read_queue_.pop_front();
    ++sysmem_reads_in_flight_;
    fabric_.read(endpoint_id_, job.addr, job.len,
                 [this, cb = std::move(job.cb)](
                     std::vector<std::uint8_t> data) {
                   assert(sysmem_reads_in_flight_ > 0);
                   --sysmem_reads_in_flight_;
                   cb(std::move(data));
                   pump_sysmem_reads();
                 });
  }
}

// ---------------------------------------------------------------------------
// The interpreter.

void Gpu::run_warp(std::shared_ptr<WarpExec> w) {
  WarpState& ws = w->state;
  // The predecoded stream: secondary decode (cmp/cond/sreg dispatch,
  // immediate casts) happened once at launch, so every case below lands
  // directly on its operation with no nested per-lane switch.
  const Decoded* const code = w->block->launch->code;
#ifndef NDEBUG
  const std::size_t code_size = w->block->launch->kl.program->size();
#endif
  SimDuration dt = 0;
  unsigned steps = 0;
  while (steps < cfg_.max_inline_steps) {
    if (ws.done()) {
      retire_warp(w, dt);
      return;
    }
    if (ws.maybe_reconverge()) continue;
    assert(static_cast<std::size_t>(ws.pc()) < code_size);
    const Decoded& in = code[ws.pc()];
    counters_.instructions_executed += ws.active_count();
    dt += issue_cost();
    ++steps;

    auto alu = [&](auto&& fn) {
      ws.for_each_active([&](unsigned lane) {
        ws.set_reg(lane, in.rd, fn(lane));
      });
      ws.set_pc(ws.pc() + 1);
    };
    auto ra = [&](unsigned lane) { return ws.reg(lane, in.ra); };
    auto rb = [&](unsigned lane) { return ws.reg(lane, in.rb); };
    auto sra = [&](unsigned lane) {
      return static_cast<std::int64_t>(ws.reg(lane, in.ra));
    };
    auto srb = [&](unsigned lane) {
      return static_cast<std::int64_t>(ws.reg(lane, in.rb));
    };
    const std::uint64_t imm = in.imm;
    const auto simm = static_cast<std::int64_t>(imm);

    switch (in.op) {
      case XOp::kNop:
        ws.set_pc(ws.pc() + 1);
        break;
      case XOp::kMovI:
        alu([&](unsigned) { return imm; });
        break;
      case XOp::kMov:
        alu([&](unsigned lane) { return ra(lane); });
        break;
      case XOp::kAdd:
        alu([&](unsigned lane) { return ra(lane) + rb(lane); });
        break;
      case XOp::kAddI:
        alu([&](unsigned lane) { return ra(lane) + imm; });
        break;
      case XOp::kSub:
        alu([&](unsigned lane) { return ra(lane) - rb(lane); });
        break;
      case XOp::kMul:
        alu([&](unsigned lane) { return ra(lane) * rb(lane); });
        break;
      case XOp::kMulI:
        alu([&](unsigned lane) { return ra(lane) * imm; });
        break;
      case XOp::kShlI:
        alu([&](unsigned lane) { return ra(lane) << imm; });
        break;
      case XOp::kShrI:
        alu([&](unsigned lane) { return ra(lane) >> imm; });
        break;
      case XOp::kAnd:
        alu([&](unsigned lane) { return ra(lane) & rb(lane); });
        break;
      case XOp::kAndI:
        alu([&](unsigned lane) { return ra(lane) & imm; });
        break;
      case XOp::kOr:
        alu([&](unsigned lane) { return ra(lane) | rb(lane); });
        break;
      case XOp::kOrI:
        alu([&](unsigned lane) { return ra(lane) | imm; });
        break;
      case XOp::kXor:
        alu([&](unsigned lane) { return ra(lane) ^ rb(lane); });
        break;
      case XOp::kNot:
        alu([&](unsigned lane) { return ~ra(lane); });
        break;
      case XOp::kBswap32:
        alu([&](unsigned lane) {
          return static_cast<std::uint64_t>(
              byteswap32(static_cast<std::uint32_t>(ra(lane))));
        });
        break;
      case XOp::kBswap64:
        alu([&](unsigned lane) { return byteswap64(ra(lane)); });
        break;
      case XOp::kSetpEq:
        alu([&](unsigned lane) -> std::uint64_t {
          return ra(lane) == rb(lane);
        });
        break;
      case XOp::kSetpNe:
        alu([&](unsigned lane) -> std::uint64_t {
          return ra(lane) != rb(lane);
        });
        break;
      case XOp::kSetpLt:
        alu([&](unsigned lane) -> std::uint64_t {
          return sra(lane) < srb(lane);
        });
        break;
      case XOp::kSetpLe:
        alu([&](unsigned lane) -> std::uint64_t {
          return sra(lane) <= srb(lane);
        });
        break;
      case XOp::kSetpGt:
        alu([&](unsigned lane) -> std::uint64_t {
          return sra(lane) > srb(lane);
        });
        break;
      case XOp::kSetpGe:
        alu([&](unsigned lane) -> std::uint64_t {
          return sra(lane) >= srb(lane);
        });
        break;
      case XOp::kSetpLtU:
        alu([&](unsigned lane) -> std::uint64_t {
          return ra(lane) < rb(lane);
        });
        break;
      case XOp::kSetpGeU:
        alu([&](unsigned lane) -> std::uint64_t {
          return ra(lane) >= rb(lane);
        });
        break;
      case XOp::kSetpEqI:
        alu([&](unsigned lane) -> std::uint64_t { return ra(lane) == imm; });
        break;
      case XOp::kSetpNeI:
        alu([&](unsigned lane) -> std::uint64_t { return ra(lane) != imm; });
        break;
      case XOp::kSetpLtI:
        alu([&](unsigned lane) -> std::uint64_t { return sra(lane) < simm; });
        break;
      case XOp::kSetpLeI:
        alu([&](unsigned lane) -> std::uint64_t { return sra(lane) <= simm; });
        break;
      case XOp::kSetpGtI:
        alu([&](unsigned lane) -> std::uint64_t { return sra(lane) > simm; });
        break;
      case XOp::kSetpGeI:
        alu([&](unsigned lane) -> std::uint64_t { return sra(lane) >= simm; });
        break;
      case XOp::kSetpLtUI:
        alu([&](unsigned lane) -> std::uint64_t { return ra(lane) < imm; });
        break;
      case XOp::kSetpGeUI:
        alu([&](unsigned lane) -> std::uint64_t { return ra(lane) >= imm; });
        break;
      case XOp::kSregTid:
        alu([&](unsigned lane) -> std::uint64_t {
          return w->warp_in_block * kWarpSize + lane;
        });
        break;
      case XOp::kSregCtaid:
        alu([&](unsigned) -> std::uint64_t { return w->block->block_index; });
        break;
      case XOp::kSregNtid:
        alu([&](unsigned) -> std::uint64_t {
          return w->block->launch->kl.threads_per_block;
        });
        break;
      case XOp::kSregNctaid:
        alu([&](unsigned) -> std::uint64_t {
          return w->block->launch->kl.blocks;
        });
        break;
      case XOp::kSregClock:
        alu([&](unsigned) {
          return static_cast<std::uint64_t>((sim_.now() + dt) / kNanosecond);
        });
        break;
      case XOp::kSregWarpId:
        alu([&](unsigned) { return w->warp_global_id; });
        break;
      case XOp::kBraAlways:
        ++counters_.branches;
        if (ws.branch(ws.mask(), in.target)) ++counters_.divergent_branches;
        break;
      case XOp::kBraIfTrue:
      case XOp::kBraIfFalse: {
        const bool want = in.op == XOp::kBraIfTrue;
        LaneMask taken = 0;
        ws.for_each_active([&](unsigned lane) {
          if ((ws.reg(lane, in.ra) != 0) == want) taken |= (1u << lane);
        });
        ++counters_.branches;
        if (ws.branch(taken, in.target)) ++counters_.divergent_branches;
        break;
      }
      case XOp::kSsy:
        ws.push_sync(in.target);
        ws.set_pc(ws.pc() + 1);
        break;
      case XOp::kCall:
        ws.call(in.target);
        break;
      case XOp::kRet:
        ws.ret();
        break;
      case XOp::kExit:
        ws.exit_active();
        break;
      case XOp::kMembarSys:
        dt += cycles(cfg_.membar_cycles);
        ws.set_pc(ws.pc() + 1);
        break;
      case XOp::kBarSync: {
        ws.set_pc(ws.pc() + 1);
        BlockState& block = *w->block;
        block.barrier_parked.push_back(w);
        if (block.barrier_parked.size() == block.warps_alive) {
          auto parked = std::move(block.barrier_parked);
          block.barrier_parked.clear();
          sim_.schedule(dt + cycles(cfg_.barrier_cycles), [this, parked] {
            for (const auto& p : parked) run_warp(p);
          });
        }
        return;  // parked until the barrier releases
      }
      case XOp::kLd:
        if (exec_load(w, in, dt)) return;
        break;
      case XOp::kSt:
        exec_store(w, in, dt);
        break;
      case XOp::kAtomAdd:
      case XOp::kAtomExch:
        if (exec_atomic(w, in, dt)) return;
        break;
    }
  }
  // Inline slice exhausted: yield to the event loop (lets DMA traffic and
  // other warps interleave at a bounded granularity).
  sim_.schedule(dt, [this, w] { run_warp(w); });
}

// ---------------------------------------------------------------------------
// PCIe endpoint personality.

void Gpu::inbound_write(Addr addr, std::span<const std::uint8_t> data) {
  assert(AddressMap::in_gpu_dram(addr) && "inbound write outside GPU DRAM");
  memory_.write(addr, data);
  // Coherence action: incoming DMA invalidates covered L2 lines, so the
  // next device-side poll misses once and observes the new data.
  l2_.invalidate_range(addr, data.size());
}

SimTime Gpu::inbound_read(SimTime arrival, Addr addr,
                          std::span<std::uint8_t> out) {
  assert(AddressMap::in_gpu_dram(addr) && "inbound read outside GPU DRAM");
  memory_.read(addr, out);
  return p2p_.serve(arrival, addr, out.size());
}

}  // namespace pg::gpu
