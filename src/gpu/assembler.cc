#include "gpu/assembler.h"

namespace pg::gpu {

std::string Assembler::fresh_label(const std::string& stem) {
  return stem + "$" + std::to_string(fresh_counter_++);
}

Assembler& Assembler::bind(const std::string& label) {
  assert(bound_.find(label) == bound_.end() && "label bound twice");
  bound_[label] = static_cast<std::int32_t>(code_.size());
  return *this;
}

Assembler& Assembler::emit(Instr in) {
  code_.push_back(in);
  return *this;
}

std::int32_t Assembler::label_ref(const std::string& label) {
  // Record a fixup; target patched in finish(). The instruction being
  // emitted is the next one (index == current size()).
  fixups_.emplace_back(code_.size(), label);
  return -1;
}

Assembler& Assembler::nop() { return emit({.op = Op::kNop}); }

Assembler& Assembler::movi(Reg rd, std::int64_t imm) {
  return emit({.op = Op::kMovI, .rd = rd.index, .imm = imm});
}
Assembler& Assembler::mov(Reg rd, Reg ra) {
  return emit({.op = Op::kMov, .rd = rd.index, .ra = ra.index});
}
Assembler& Assembler::add(Reg rd, Reg ra, Reg rb) {
  return emit({.op = Op::kAdd, .rd = rd.index, .ra = ra.index, .rb = rb.index});
}
Assembler& Assembler::addi(Reg rd, Reg ra, std::int64_t imm) {
  return emit({.op = Op::kAddI, .rd = rd.index, .ra = ra.index, .imm = imm});
}
Assembler& Assembler::sub(Reg rd, Reg ra, Reg rb) {
  return emit({.op = Op::kSub, .rd = rd.index, .ra = ra.index, .rb = rb.index});
}
Assembler& Assembler::mul(Reg rd, Reg ra, Reg rb) {
  return emit({.op = Op::kMul, .rd = rd.index, .ra = ra.index, .rb = rb.index});
}
Assembler& Assembler::muli(Reg rd, Reg ra, std::int64_t imm) {
  return emit({.op = Op::kMulI, .rd = rd.index, .ra = ra.index, .imm = imm});
}
Assembler& Assembler::shli(Reg rd, Reg ra, std::int64_t imm) {
  return emit({.op = Op::kShlI, .rd = rd.index, .ra = ra.index, .imm = imm});
}
Assembler& Assembler::shri(Reg rd, Reg ra, std::int64_t imm) {
  return emit({.op = Op::kShrI, .rd = rd.index, .ra = ra.index, .imm = imm});
}
Assembler& Assembler::and_(Reg rd, Reg ra, Reg rb) {
  return emit({.op = Op::kAnd, .rd = rd.index, .ra = ra.index, .rb = rb.index});
}
Assembler& Assembler::andi(Reg rd, Reg ra, std::int64_t imm) {
  return emit({.op = Op::kAndI, .rd = rd.index, .ra = ra.index, .imm = imm});
}
Assembler& Assembler::or_(Reg rd, Reg ra, Reg rb) {
  return emit({.op = Op::kOr, .rd = rd.index, .ra = ra.index, .rb = rb.index});
}
Assembler& Assembler::ori(Reg rd, Reg ra, std::int64_t imm) {
  return emit({.op = Op::kOrI, .rd = rd.index, .ra = ra.index, .imm = imm});
}
Assembler& Assembler::xor_(Reg rd, Reg ra, Reg rb) {
  return emit({.op = Op::kXor, .rd = rd.index, .ra = ra.index, .rb = rb.index});
}
Assembler& Assembler::not_(Reg rd, Reg ra) {
  return emit({.op = Op::kNot, .rd = rd.index, .ra = ra.index});
}
Assembler& Assembler::bswap32(Reg rd, Reg ra) {
  return emit({.op = Op::kBswap32, .rd = rd.index, .ra = ra.index});
}
Assembler& Assembler::bswap64(Reg rd, Reg ra) {
  return emit({.op = Op::kBswap64, .rd = rd.index, .ra = ra.index});
}
Assembler& Assembler::setp(Cmp cmp, Reg rd, Reg ra, Reg rb) {
  return emit({.op = Op::kSetp,
               .rd = rd.index,
               .ra = ra.index,
               .rb = rb.index,
               .cmp = cmp});
}
Assembler& Assembler::setpi(Cmp cmp, Reg rd, Reg ra, std::int64_t imm) {
  return emit(
      {.op = Op::kSetpI, .rd = rd.index, .ra = ra.index, .cmp = cmp, .imm = imm});
}

Assembler& Assembler::bra(const std::string& label) {
  return emit({.op = Op::kBra, .cond = BraCond::kAlways,
               .target = label_ref(label)});
}
Assembler& Assembler::bra_if(Reg ra, const std::string& label) {
  return emit({.op = Op::kBra,
               .ra = ra.index,
               .cond = BraCond::kIfTrue,
               .target = label_ref(label)});
}
Assembler& Assembler::bra_ifnot(Reg ra, const std::string& label) {
  return emit({.op = Op::kBra,
               .ra = ra.index,
               .cond = BraCond::kIfFalse,
               .target = label_ref(label)});
}
Assembler& Assembler::ssy(const std::string& label) {
  return emit({.op = Op::kSsy, .target = label_ref(label)});
}
Assembler& Assembler::call(const std::string& label) {
  return emit({.op = Op::kCall, .target = label_ref(label)});
}
Assembler& Assembler::ret() { return emit({.op = Op::kRet}); }
Assembler& Assembler::exit() { return emit({.op = Op::kExit}); }

Assembler& Assembler::ld(Reg rd, Reg addr, std::int64_t offset,
                         unsigned width) {
  return emit({.op = Op::kLd,
               .rd = rd.index,
               .ra = addr.index,
               .width = static_cast<std::uint8_t>(width),
               .imm = offset});
}
Assembler& Assembler::st(Reg addr, Reg value, std::int64_t offset,
                         unsigned width) {
  return emit({.op = Op::kSt,
               .ra = addr.index,
               .rb = value.index,
               .width = static_cast<std::uint8_t>(width),
               .imm = offset});
}
Assembler& Assembler::atom_add(Reg rd, Reg addr, Reg value,
                               std::int64_t offset) {
  return emit({.op = Op::kAtomAdd,
               .rd = rd.index,
               .ra = addr.index,
               .rb = value.index,
               .imm = offset});
}
Assembler& Assembler::atom_exch(Reg rd, Reg addr, Reg value,
                                std::int64_t offset) {
  return emit({.op = Op::kAtomExch,
               .rd = rd.index,
               .ra = addr.index,
               .rb = value.index,
               .imm = offset});
}

Assembler& Assembler::membar_sys() { return emit({.op = Op::kMembarSys}); }
Assembler& Assembler::bar_sync() { return emit({.op = Op::kBarSync}); }
Assembler& Assembler::sreg(Reg rd, Sreg which) {
  return emit({.op = Op::kSreg, .rd = rd.index, .sreg = which});
}

Result<Program> Assembler::finish() {
  for (const auto& [index, label] : fixups_) {
    auto it = bound_.find(label);
    if (it == bound_.end()) {
      return not_found("program '" + name_ + "': unbound label '" + label +
                       "'");
    }
    code_[index].target = it->second;
  }
  Program program(name_, std::move(code_));
  if (Status st = program.validate(); !st.is_ok()) {
    return st;
  }
  return program;
}

}  // namespace pg::gpu
