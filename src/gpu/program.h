// A validated, executable device program.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "gpu/isa.h"

namespace pg::gpu {

class Program {
 public:
  Program() = default;
  Program(std::string name, std::vector<Instr> code)
      : name_(std::move(name)), code_(std::move(code)) {}

  const std::string& name() const { return name_; }
  const std::vector<Instr>& code() const { return code_; }
  std::size_t size() const { return code_.size(); }
  const Instr& at(std::size_t pc) const { return code_[pc]; }

  /// Structural validation: branch targets in range, widths legal, a
  /// reachable EXIT exists. Run once after assembly.
  Status validate() const;

  /// Full disassembly listing with instruction indices.
  std::string disassemble() const;

 private:
  std::string name_;
  std::vector<Instr> code_;
};

}  // namespace pg::gpu
