// A validated, executable device program.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "gpu/isa.h"

namespace pg::gpu {

/// Fully-resolved opcode for the predecoded stream: the Instr
/// sub-fields that the interpreter would otherwise re-dispatch on per
/// lane (comparison kind, branch condition, special register) are folded
/// into one flat enum, so the interpreter's switch lands directly on the
/// operation. Block layout matters: the Setp/SetpI/Sreg/Bra groups are
/// indexed arithmetically from their base during predecode and must stay
/// in Cmp/Sreg/BraCond declaration order.
enum class XOp : std::uint8_t {
  kNop = 0,
  kMovI, kMov,
  kAdd, kAddI, kSub, kMul, kMulI, kShlI, kShrI,
  kAnd, kAndI, kOr, kOrI, kXor, kNot,
  kBswap32, kBswap64,
  // Cmp order: Eq, Ne, Lt, Le, Gt, Ge, LtU, GeU.
  kSetpEq, kSetpNe, kSetpLt, kSetpLe, kSetpGt, kSetpGe, kSetpLtU, kSetpGeU,
  kSetpEqI, kSetpNeI, kSetpLtI, kSetpLeI, kSetpGtI, kSetpGeI, kSetpLtUI,
  kSetpGeUI,
  // Sreg order: TidX, CtaidX, NtidX, NctaidX, Clock, WarpId.
  kSregTid, kSregCtaid, kSregNtid, kSregNctaid, kSregClock, kSregWarpId,
  // BraCond order: Always, IfTrue, IfFalse.
  kBraAlways, kBraIfTrue, kBraIfFalse,
  kSsy, kCall, kRet, kExit,
  kMembarSys, kBarSync,
  kLd, kSt, kAtomAdd, kAtomExch,
};

/// One predecoded instruction: secondary decode and immediate casts are
/// done once at predecode time instead of millions of times in the
/// interpreter loop. Shift immediates arrive pre-masked to 6 bits.
struct Decoded {
  XOp op = XOp::kNop;
  std::uint8_t rd = 0;
  std::uint8_t ra = 0;
  std::uint8_t rb = 0;
  std::uint8_t width = 8;
  std::int32_t target = -1;
  std::uint64_t imm = 0;
};

class Program {
 public:
  Program() = default;
  Program(std::string name, std::vector<Instr> code)
      : name_(std::move(name)), code_(std::move(code)) {}

  const std::string& name() const { return name_; }
  const std::vector<Instr>& code() const { return code_; }
  std::size_t size() const { return code_.size(); }
  const Instr& at(std::size_t pc) const { return code_[pc]; }

  /// The predecoded stream the interpreter executes. Built on first use
  /// (the GPU resolves it once per kernel launch) and cached; the
  /// returned vector is stable for the Program's lifetime.
  const std::vector<Decoded>& decoded() const;

  /// Structural validation: branch targets in range, widths legal, a
  /// reachable EXIT exists. Run once after assembly.
  Status validate() const;

  /// Full disassembly listing with instruction indices.
  std::string disassemble() const;

 private:
  std::string name_;
  std::vector<Instr> code_;
  mutable std::vector<Decoded> decoded_;  // predecode cache
};

}  // namespace pg::gpu
