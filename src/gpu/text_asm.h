// Text-format assembler for PTX-lite.
//
// Accepts the same syntax the disassembler prints, plus symbolic labels,
// so device routines can be written in plain text files, embedded in
// docs/tests, or round-tripped through Program::disassemble(). Example:
//
//     # spin until [r4] == r5
//     loop:
//       ld.u64 r8, [r4+0]
//       setp.ne r9, r8, r5
//       bra.if r9, loop
//       exit
//
// Lines: `label:`, instructions, blank lines; `#` and `//` start
// comments. Branch/call/ssy targets may be labels or absolute
// instruction indices (the disassembler emits indices).
#pragma once

#include <string>

#include "common/status.h"
#include "gpu/program.h"

namespace pg::gpu {

/// Assembles `source` into a validated program named `name`.
/// Errors carry the offending line number.
Result<Program> assemble_text(const std::string& name,
                              const std::string& source);

}  // namespace pg::gpu
