#include "gpu/counters.h"

#include <cstdio>

namespace pg::gpu {

std::string PerfCounters::to_table(const std::string& title) const {
  char line[160];
  std::string out;
  std::snprintf(line, sizeof(line), "%-38s %14s\n", "metric", title.c_str());
  out += line;
  auto row = [&](const char* name, std::uint64_t v) {
    std::snprintf(line, sizeof(line), "%-38s %14llu\n", name,
                  static_cast<unsigned long long>(v));
    out += line;
  };
  row("sysmem reads (32B accesses)", sysmem_read_transactions);
  row("sysmem writes (32B accesses)", sysmem_write_transactions);
  row("globmem64 reads (accesses)", globmem_read64);
  row("globmem64 writes (accesses)", globmem_write64);
  row("l2 read hits", l2_read_hits);
  row("l2 read requests", l2_read_requests);
  row("l2 write requests", l2_write_requests);
  row("memory accesses (r/w)", memory_accesses);
  row("instructions executed", instructions_executed);
  return out;
}

}  // namespace pg::gpu
