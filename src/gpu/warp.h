// Warp execution state: per-thread registers plus SIMT control flow.
//
// Divergence follows the pre-Volta (Kepler-era) hardware scheme the
// paper's GPUs used: an SSY instruction pushes a reconvergence point;
// a divergent branch splits the warp into fragments that execute
// serially; fragments park when they reach the reconvergence point and
// the warp continues with the merged mask once all fragments arrive.
// Control flow that never diverges (the common case in the device
// put/get library, which the paper notes is effectively single-threaded)
// pays nothing for this machinery.
//
// This class is purely architectural state - no timing - so it is unit
// testable without a simulation.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

#include "gpu/isa.h"

namespace pg::gpu {

using LaneMask = std::uint32_t;

class WarpState {
 public:
  /// A warp of `active_lanes` threads (1..32) starting at pc 0.
  explicit WarpState(unsigned active_lanes);

  // --- basic state ----------------------------------------------------------

  int pc() const { return pc_; }
  void set_pc(int pc) { pc_ = pc; }
  LaneMask mask() const { return mask_; }
  bool alive() const { return mask_ != 0 || !pending_work(); }
  bool done() const { return mask_ == 0 && !pending_work(); }
  unsigned active_count() const { return __builtin_popcount(mask_); }

  std::uint64_t reg(unsigned lane, unsigned r) const {
    return regs_[lane][r];
  }
  void set_reg(unsigned lane, unsigned r, std::uint64_t v) {
    regs_[lane][r] = v;
  }

  /// Applies `fn(lane)` to every active lane, in ascending lane order.
  /// Iterates set bits directly: a single-lane warp (the common case in
  /// the device put/get library) costs one iteration, not kWarpSize.
  template <typename Fn>
  void for_each_active(Fn&& fn) const {
    for (LaneMask m = mask_; m != 0; m &= m - 1) {
      fn(static_cast<unsigned>(__builtin_ctz(m)));
    }
  }

  /// Lowest active lane (for warp-uniform reads). Requires mask != 0.
  unsigned first_active() const {
    assert(mask_ != 0);
    return static_cast<unsigned>(__builtin_ctz(mask_));
  }

  // --- control flow ---------------------------------------------------------

  /// Handles reconvergence: if the current pc is the top reconvergence
  /// point, parks the fragment and switches to the next one (or merges).
  /// Returns true if state changed (caller should re-check before
  /// executing). Costs no instruction slot, like hardware.
  bool maybe_reconverge();

  /// SSY: declares `reconv_pc` as the reconvergence point for subsequent
  /// divergence.
  void push_sync(int reconv_pc);

  /// Resolves a branch where `taken` lanes (subset of the active mask) go
  /// to `target` and the rest fall through to pc+1. Uniform branches do
  /// not diverge. Returns true when the warp actually diverged.
  bool branch(LaneMask taken, int target);

  /// EXIT for all currently active lanes. Switches to the next fragment
  /// if one is pending.
  void exit_active();

  /// CALL: pushes pc+1 and jumps (warp-uniform control flow required).
  void call(int target);

  /// RET: pops the return address.
  void ret();

  unsigned call_depth() const { return static_cast<unsigned>(call_stack_.size()); }
  unsigned divergence_depth() const { return static_cast<unsigned>(sync_stack_.size()); }

 private:
  struct Fragment {
    LaneMask mask;
    int pc;
  };
  struct SyncEntry {
    int reconv_pc;
    LaneMask merged = 0;               // lanes already arrived
    std::vector<Fragment> pending;     // fragments not yet run
  };

  bool pending_work() const {
    for (const auto& entry : sync_stack_) {
      if (!entry.pending.empty() || entry.merged != 0) return true;
    }
    return false;
  }

  /// Activates the next pending fragment or merges the top entry.
  void next_fragment();

  int pc_ = 0;
  LaneMask mask_;
  std::vector<std::array<std::uint64_t, kNumRegs>> regs_;
  std::vector<SyncEntry> sync_stack_;
  std::vector<int> call_stack_;
};

}  // namespace pg::gpu
