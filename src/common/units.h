// Time and size units used throughout the simulator.
//
// Simulated time is an integer count of picoseconds (SimTime). Picosecond
// granularity lets us express sub-nanosecond link serialization delays
// exactly while still covering ~106 days of simulated time in an int64.
#pragma once

#include <cstdint>

namespace pg {

/// Simulated time in picoseconds.
using SimTime = std::int64_t;

/// Duration in picoseconds (same representation as SimTime).
using SimDuration = std::int64_t;

constexpr SimDuration kPicosecond = 1;
constexpr SimDuration kNanosecond = 1000;
constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;

constexpr SimDuration picoseconds(std::int64_t n) { return n; }
constexpr SimDuration nanoseconds(std::int64_t n) { return n * kNanosecond; }
constexpr SimDuration microseconds(std::int64_t n) { return n * kMicrosecond; }
constexpr SimDuration milliseconds(std::int64_t n) { return n * kMillisecond; }

/// Converts a picosecond duration to (fractional) microseconds.
constexpr double to_us(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

/// Converts a picosecond duration to (fractional) nanoseconds.
constexpr double to_ns(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kNanosecond);
}

/// Converts a picosecond duration to (fractional) seconds.
constexpr double to_sec(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

// ---------------------------------------------------------------------------
// Sizes.

constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * KiB;
constexpr std::uint64_t GiB = 1024 * MiB;

/// Bandwidth expressed as bytes per second; stored as double to permit
/// fractional effective rates after protocol overheads.
struct Bandwidth {
  double bytes_per_second = 0.0;

  /// Time to serialize `bytes` at this rate (rounded up to a picosecond).
  constexpr SimDuration transfer_time(std::uint64_t bytes) const {
    if (bytes_per_second <= 0.0) return 0;
    const double seconds = static_cast<double>(bytes) / bytes_per_second;
    const double ps = seconds * static_cast<double>(kSecond);
    const auto whole = static_cast<SimDuration>(ps);
    return (static_cast<double>(whole) < ps) ? whole + 1 : whole;
  }

  constexpr double gb_per_second() const { return bytes_per_second / 1e9; }
};

constexpr Bandwidth gigabytes_per_second(double gb) {
  return Bandwidth{gb * 1e9};
}

constexpr Bandwidth megabytes_per_second(double mb) {
  return Bandwidth{mb * 1e6};
}

}  // namespace pg
