// Fixed-capacity ring buffer.
//
// Used for NIC pipeline stages and notification staging where a bounded
// queue with overflow detection mirrors the hardware structure (the paper:
// "If notifications are used they have to be consumed and freed before the
// queue overflows").
#pragma once

#include <cassert>
#include <cstddef>
#include <optional>
#include <vector>

namespace pg {

template <typename T>
class Ring {
 public:
  explicit Ring(std::size_t capacity) : slots_(capacity) {
    assert(capacity > 0);
  }

  std::size_t capacity() const { return slots_.size(); }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  bool full() const { return count_ == slots_.size(); }

  /// Pushes a value; returns false (and drops nothing) when full.
  bool push(T value) {
    if (full()) return false;
    slots_[tail_] = std::move(value);
    tail_ = advance(tail_);
    ++count_;
    return true;
  }

  /// Pops the oldest value, or nullopt when empty.
  std::optional<T> pop() {
    if (empty()) return std::nullopt;
    T value = std::move(slots_[head_]);
    head_ = advance(head_);
    --count_;
    return value;
  }

  /// Oldest element without removing it. Requires !empty().
  const T& front() const {
    assert(!empty());
    return slots_[head_];
  }

  T& front() {
    assert(!empty());
    return slots_[head_];
  }

  void clear() {
    head_ = tail_ = 0;
    count_ = 0;
  }

 private:
  std::size_t advance(std::size_t i) const {
    return (i + 1 == slots_.size()) ? 0 : i + 1;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t count_ = 0;
};

}  // namespace pg
