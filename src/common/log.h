// Minimal leveled logging for simulator diagnostics.
//
// Logging is off (kWarn) by default so benchmarks stay quiet; tests that
// debug a model can raise the level for a scope with LogLevelGuard.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace pg {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
  kTrace = 4,
};

/// Global log verbosity threshold. Messages above this level are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

/// RAII override of the global log level (for tests).
class LogLevelGuard {
 public:
  explicit LogLevelGuard(LogLevel level) : previous_(log_level()) {
    set_log_level(level);
  }
  ~LogLevelGuard() { set_log_level(previous_); }
  LogLevelGuard(const LogLevelGuard&) = delete;
  LogLevelGuard& operator=(const LogLevelGuard&) = delete;

 private:
  LogLevel previous_;
};

namespace detail {
void vlog(LogLevel level, const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));
}  // namespace detail

#define PG_LOG(level, tag, ...)                          \
  do {                                                   \
    if (static_cast<int>(level) <=                       \
        static_cast<int>(::pg::log_level())) {           \
      ::pg::detail::vlog(level, tag, __VA_ARGS__);       \
    }                                                    \
  } while (0)

#define PG_ERROR(tag, ...) PG_LOG(::pg::LogLevel::kError, tag, __VA_ARGS__)
#define PG_WARN(tag, ...) PG_LOG(::pg::LogLevel::kWarn, tag, __VA_ARGS__)
#define PG_INFO(tag, ...) PG_LOG(::pg::LogLevel::kInfo, tag, __VA_ARGS__)
#define PG_DEBUG(tag, ...) PG_LOG(::pg::LogLevel::kDebug, tag, __VA_ARGS__)
#define PG_TRACE(tag, ...) PG_LOG(::pg::LogLevel::kTrace, tag, __VA_ARGS__)

}  // namespace pg
