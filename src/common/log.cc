#include "common/log.h"

#include <cstdarg>

namespace pg {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kTrace:
      return "T";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {
void vlog(LogLevel level, const char* tag, const char* fmt, ...) {
  std::fprintf(stderr, "[%s %s] ", level_name(level), tag);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}
}  // namespace detail

}  // namespace pg
