// Lightweight Status / Result<T> error propagation.
//
// The simulator is a library, not an application: model-level failures
// (bad registration, queue overflow, malformed descriptor) are reported to
// the caller as values rather than exceptions so that tests can assert on
// them and so that NIC models can surface errors the way real hardware
// does (a completion with an error code).
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace pg {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
};

/// Human-readable name for a status code.
const char* status_code_name(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "CODE: message".
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status invalid_argument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status out_of_range(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status not_found(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status already_exists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status resource_exhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status failed_precondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status internal_error(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

/// A value-or-status, in the spirit of std::expected (not yet in our
/// toolchain's standard library).
template <typename T>
class Result {
 public:
  Result(T value) : payload_(std::move(value)) {}            // NOLINT
  Result(Status status) : payload_(std::move(status)) {      // NOLINT
    assert(!std::get<Status>(payload_).is_ok() &&
           "Result must not be constructed from an OK status");
  }

  bool is_ok() const { return std::holds_alternative<T>(payload_); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& {
    assert(is_ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    assert(is_ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    assert(is_ok());
    return std::get<T>(std::move(payload_));
  }

  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(payload_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace pg
