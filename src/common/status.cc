#include "common/status.h"

namespace pg {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out = status_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace pg
