// Endianness and alignment helpers.
//
// The InfiniBand WQE layout is big-endian on the wire; the simulated hosts
// and GPU are little-endian (as the paper's were), so the codec and the
// GPU BSWAP instruction both funnel through these helpers.
#pragma once

#include <cstdint>
#include <cstring>

namespace pg {

constexpr std::uint16_t byteswap16(std::uint16_t v) {
  return static_cast<std::uint16_t>((v << 8) | (v >> 8));
}

constexpr std::uint32_t byteswap32(std::uint32_t v) {
  return ((v & 0x000000FFu) << 24) | ((v & 0x0000FF00u) << 8) |
         ((v & 0x00FF0000u) >> 8) | ((v & 0xFF000000u) >> 24);
}

constexpr std::uint64_t byteswap64(std::uint64_t v) {
  return (static_cast<std::uint64_t>(byteswap32(static_cast<std::uint32_t>(v)))
          << 32) |
         byteswap32(static_cast<std::uint32_t>(v >> 32));
}

/// Host (little-endian) to big-endian conversions, as used by the IB codec.
constexpr std::uint16_t host_to_be16(std::uint16_t v) { return byteswap16(v); }
constexpr std::uint32_t host_to_be32(std::uint32_t v) { return byteswap32(v); }
constexpr std::uint64_t host_to_be64(std::uint64_t v) { return byteswap64(v); }
constexpr std::uint16_t be_to_host16(std::uint16_t v) { return byteswap16(v); }
constexpr std::uint32_t be_to_host32(std::uint32_t v) { return byteswap32(v); }
constexpr std::uint64_t be_to_host64(std::uint64_t v) { return byteswap64(v); }

constexpr bool is_power_of_two(std::uint64_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

constexpr std::uint64_t align_down(std::uint64_t v, std::uint64_t alignment) {
  return v & ~(alignment - 1);
}

constexpr std::uint64_t align_up(std::uint64_t v, std::uint64_t alignment) {
  return (v + alignment - 1) & ~(alignment - 1);
}

/// Number of `granule`-sized transactions needed to cover [addr, addr+size).
/// This matches how GPU profilers count "32B accesses": a naturally
/// misaligned access that straddles a granule boundary costs two.
constexpr std::uint64_t covering_granules(std::uint64_t addr,
                                          std::uint64_t size,
                                          std::uint64_t granule) {
  if (size == 0) return 0;
  const std::uint64_t first = align_down(addr, granule);
  const std::uint64_t last = align_down(addr + size - 1, granule);
  return (last - first) / granule + 1;
}

/// ceil(a / b) for positive integers.
constexpr std::uint64_t div_ceil(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

}  // namespace pg
