// Deterministic pseudo-random number generation (xoshiro256**).
//
// The simulator must be reproducible: all stochastic behaviour (payload
// fuzzing in tests, randomized arrival jitter if enabled) draws from an
// explicitly seeded Rng so a failing run can be replayed exactly.
#pragma once

#include <cstdint>

namespace pg {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection-free (slightly biased for astronomically large bounds, which
    // is acceptable for simulation workload generation).
    return next_u64() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  std::uint8_t next_byte() { return static_cast<std::uint8_t>(next_u64()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace pg
