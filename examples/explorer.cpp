// Explorer: run any of the paper's experiments (or your own PTX-lite
// program) from the command line.
//
//   explorer pingpong <extoll|ib> <mode> <size> [iters]
//   explorer bandwidth <extoll|ib> <mode> <size> [messages]
//   explorer msgrate  <extoll|ib> <blocks|kernels|assisted|host> <pairs>
//   explorer run <file.ptxl>       # execute a PTX-lite text program
//
// modes: direct | pollgpu | bufongpu | bufonhost | assisted | host
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "gpu/text_asm.h"
#include "putget/extoll_experiments.h"
#include "putget/ib_experiments.h"
#include "sys/testbed.h"

using namespace pg;
using putget::QueueLocation;
using putget::RateVariant;
using putget::TransferMode;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  explorer pingpong  <extoll|ib> <mode> <size> [iters]\n"
      "  explorer bandwidth <extoll|ib> <mode> <size> [messages]\n"
      "  explorer msgrate   <extoll|ib> <blocks|kernels|assisted|host> "
      "<pairs> [msgs]\n"
      "  explorer run <file.ptxl>\n"
      "modes: direct pollgpu bufongpu bufonhost assisted host\n");
  return 2;
}

bool parse_mode(const std::string& s, TransferMode* mode,
                QueueLocation* loc) {
  *loc = QueueLocation::kGpuMemory;
  if (s == "direct" || s == "bufongpu") {
    *mode = TransferMode::kGpuDirect;
    return true;
  }
  if (s == "bufonhost") {
    *mode = TransferMode::kGpuDirect;
    *loc = QueueLocation::kHostMemory;
    return true;
  }
  if (s == "pollgpu") {
    *mode = TransferMode::kGpuPollDevice;
    return true;
  }
  if (s == "assisted") {
    *mode = TransferMode::kHostAssisted;
    return true;
  }
  if (s == "host") {
    *mode = TransferMode::kHostControlled;
    return true;
  }
  return false;
}

bool parse_variant(const std::string& s, RateVariant* v) {
  if (s == "blocks") *v = RateVariant::kBlocks;
  else if (s == "kernels") *v = RateVariant::kKernels;
  else if (s == "assisted") *v = RateVariant::kAssisted;
  else if (s == "host") *v = RateVariant::kHostControlled;
  else return false;
  return true;
}

int run_ptxl(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  auto prog = gpu::assemble_text(path, ss.str());
  if (!prog.is_ok()) {
    std::fprintf(stderr, "assembly failed: %s\n",
                 prog.status().to_string().c_str());
    return 1;
  }
  std::printf("%s", prog->disassemble().c_str());
  sim::Simulation sim;
  mem::MemoryDomain memory;
  pcie::Fabric fabric(sim, memory, pcie::FabricConfig{});
  gpu::Gpu gpu(sim, fabric, memory, gpu::GpuConfig{}, "explorer");
  // Parameter r4 points at a scratch output buffer; its first 8 u64 are
  // dumped after the run.
  const mem::Addr out = mem::AddressMap::kGpuDramBase + 64 * 1024;
  bool done = false;
  gpu.launch({.program = &prog.value(), .params = {out}},
             [&] { done = true; });
  sim.set_event_limit(50'000'000);
  sim.run_until_condition([&] { return done; });
  sim.run();
  if (!done) {
    std::fprintf(stderr, "program did not terminate (event limit)\n");
    return 1;
  }
  std::printf("\ncompleted in %.2f us simulated, %llu instructions\n",
              to_us(sim.now()),
              static_cast<unsigned long long>(
                  gpu.counters().instructions_executed));
  std::printf("output buffer (r4):");
  for (int i = 0; i < 8; ++i) {
    std::printf(" %llu",
                static_cast<unsigned long long>(memory.read_u64(out + i * 8)));
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  if (cmd == "run") return run_ptxl(argv[2]);
  if (argc < 5 && cmd != "msgrate") return usage();

  const std::string fabric = argv[2];
  const bool is_extoll = fabric == "extoll";
  if (!is_extoll && fabric != "ib") return usage();
  const auto cfg = is_extoll ? sys::extoll_testbed() : sys::ib_testbed();

  if (cmd == "pingpong" || cmd == "bandwidth") {
    TransferMode mode;
    QueueLocation loc;
    if (!parse_mode(argv[3], &mode, &loc)) return usage();
    const auto size = static_cast<std::uint32_t>(std::atoll(argv[4]));
    const std::uint32_t count =
        argc > 5 ? static_cast<std::uint32_t>(std::atoll(argv[5]))
                 : (cmd == "pingpong" ? 50 : 20);
    if (cmd == "pingpong") {
      const auto r =
          is_extoll ? putget::run_extoll_pingpong(cfg, mode, size, count)
                    : putget::run_ib_pingpong(cfg, mode, loc, size, count);
      if (!r.payload_ok) {
        std::fprintf(stderr, "experiment failed\n");
        return 1;
      }
      std::printf("%s %s %u B x %u iters: latency %.2f us (half RTT), "
                  "posting %.2f us total, polling %.2f us total\n",
                  fabric.c_str(), argv[3], size, count, r.half_rtt_us,
                  r.post_sum_us, r.poll_sum_us);
    } else {
      const auto r =
          is_extoll ? putget::run_extoll_bandwidth(cfg, mode, size, count)
                    : putget::run_ib_bandwidth(cfg, mode, loc, size, count);
      if (!r.payload_ok) {
        std::fprintf(stderr, "experiment failed\n");
        return 1;
      }
      std::printf("%s %s %u B x %u msgs: %.1f MB/s\n", fabric.c_str(),
                  argv[3], size, count, r.mb_per_s);
    }
    return 0;
  }
  if (cmd == "msgrate") {
    if (argc < 4) return usage();
    RateVariant v;
    if (!parse_variant(argv[3], &v)) return usage();
    const auto pairs =
        argc > 4 ? static_cast<std::uint32_t>(std::atoll(argv[4])) : 8;
    const auto msgs =
        argc > 5 ? static_cast<std::uint32_t>(std::atoll(argv[5])) : 40;
    const auto r = is_extoll ? putget::run_extoll_msgrate(cfg, v, pairs, msgs)
                             : putget::run_ib_msgrate(cfg, v, pairs, msgs);
    if (r.msgs_per_s <= 0) {
      std::fprintf(stderr, "experiment failed\n");
      return 1;
    }
    std::printf("%s %s, %u pairs x %u msgs: %.0f msgs/s\n", fabric.c_str(),
                argv[3], pairs, msgs, r.msgs_per_s);
    return 0;
  }
  return usage();
}
