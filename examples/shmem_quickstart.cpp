// SHMEM quickstart: the same symmetric-heap program, run once per
// fabric. This is the code shape the README quotes — a GUPS-style
// scatter of tagged words into a distributed table:
//
//   1. build an N-node full-mesh cluster and a Shmem heap on it,
//   2. shmem_malloc a table (one call, valid offset on every PE),
//   3. every PE puts tagged words into its neighbours' tables with
//      put-with-notification,
//   4. quiet() for source completion, wait_notified() for arrivals,
//   5. peek the remote tables and verify — then run the identical
//      function again with the other backend and compare checksums.
#include <cstdio>

#include "shmem/shmem.h"
#include "sys/testbed.h"

using namespace pg;
using putget::Completion;
using putget::RmaBackend;

namespace {

/// The portable part: everything below speaks symmetric offsets and
/// shmem verbs only — nothing names a port, QP, NLA or MR.
std::uint64_t scatter_and_verify(shmem::Shmem& s) {
  const int n = s.n_pes();
  const std::uint32_t words_per_pe = 8;
  const shmem::SymOff table = *s.shmem_malloc(n * words_per_pe * 8);
  const shmem::SymOff stage = *s.shmem_malloc(8);

  // Every PE tags one word in every other PE's table column.
  for (int from = 0; from < n; ++from) {
    for (int to = 0; to < n; ++to) {
      if (to == from) continue;
      for (std::uint32_t w = 0; w < words_per_pe; ++w) {
        const std::uint64_t tag =
            0xABCD0000ull | (from << 12) | (to << 4) | w;
        s.poke_u64(from, stage, tag);
        if (!s.put(from, to, table + (from * words_per_pe + w) * 8, stage, 8,
                   Completion::kNotification)
                 .is_ok()) {
          return 0;
        }
      }
    }
  }
  // Source-side: everything flushed. Target-side: every arrival seen.
  for (int pe = 0; pe < n; ++pe) {
    if (!s.quiet(pe).is_ok()) return 0;
    if (!s.wait_notified(pe, (n - 1) * words_per_pe)) return 0;
  }
  // Verify and checksum the distributed table.
  std::uint64_t checksum = 0;
  for (int to = 0; to < n; ++to) {
    for (int from = 0; from < n; ++from) {
      if (to == from) continue;
      for (std::uint32_t w = 0; w < words_per_pe; ++w) {
        const std::uint64_t got =
            s.peek_u64(to, table + (from * words_per_pe + w) * 8);
        const std::uint64_t want =
            0xABCD0000ull | (from << 12) | (to << 4) | w;
        if (got != want) return 0;
        checksum += got;
      }
    }
  }
  return checksum;
}

std::uint64_t run_backend(RmaBackend backend) {
  sys::ClusterConfig cfg = sys::default_testbed();
  cfg.num_nodes = 4;
  cfg.topology = net::Topology::kFullMesh;
  sys::Cluster cluster(cfg);

  shmem::ShmemOptions so;
  so.backend = backend;
  auto s = shmem::Shmem::create(cluster, so);
  if (!s.is_ok()) {
    std::fprintf(stderr, "shmem setup failed: %s\n",
                 s.status().to_string().c_str());
    return 0;
  }
  const std::uint64_t checksum = scatter_and_verify(**s);
  std::printf("  %-6s : checksum %016llx, %llu arrivals/PE observed\n",
              putget::rma_backend_name(backend),
              static_cast<unsigned long long>(checksum),
              static_cast<unsigned long long>((*s)->notified(0)));
  return checksum;
}

}  // namespace

int main() {
  std::printf("shmem quickstart - one program, two fabrics\n");
  const std::uint64_t ext = run_backend(RmaBackend::kExtoll);
  const std::uint64_t ib = run_backend(RmaBackend::kIb);
  if (ext == 0 || ext != ib) {
    std::fprintf(stderr, "FAILED: backends disagree\n");
    return 1;
  }
  std::printf("  backends agree.\n");
  return 0;
}
