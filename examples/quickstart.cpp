// Quickstart: one-sided put/get between two simulated nodes over the
// EXTOLL RMA fabric, driven from the host CPUs.
//
// Walks through the full life cycle the paper describes:
//   1. build the two-node testbed,
//   2. open an RMA port on each node and register GPU memory (the ATU
//      hands back Network Logical Addresses),
//   3. put a buffer from node0's GPU memory into node1's GPU memory and
//      wait for the requester/completer notifications,
//   4. get it back with a one-sided read,
//   5. verify every byte.
#include <cstdio>
#include <vector>

#include "putget/extoll_host.h"
#include "sys/testbed.h"

using namespace pg;

int main() {
  // 1. The simulated testbed: two nodes, each with a host CPU, a
  //    Kepler-class GPU and an EXTOLL Galibier NIC, joined by a link.
  sys::Cluster cluster(sys::extoll_testbed());
  sys::Node& n0 = cluster.node(0);
  sys::Node& n1 = cluster.node(1);

  // 2. Open port 0 on both NICs and register one GPU buffer per node.
  auto port0 = putget::ExtollHostPort::open(n0.extoll(), 0);
  auto port1 = putget::ExtollHostPort::open(n1.extoll(), 0);
  if (!port0.is_ok() || !port1.is_ok()) {
    std::fprintf(stderr, "failed to open RMA ports\n");
    return 1;
  }
  constexpr std::uint32_t kSize = 64 * 1024;
  const mem::Addr src = n0.gpu_heap().alloc(kSize);   // "cudaMalloc"
  const mem::Addr dst = n1.gpu_heap().alloc(kSize);
  const mem::Addr back = n0.gpu_heap().alloc(kSize);
  auto src_nla = n0.extoll().register_memory(src, kSize,
                                             mem::Access::kReadWrite);
  auto dst_nla = n1.extoll().register_memory(dst, kSize,
                                             mem::Access::kReadWrite);
  auto back_nla = n0.extoll().register_memory(back, kSize,
                                              mem::Access::kReadWrite);
  if (!src_nla.is_ok() || !dst_nla.is_ok() || !back_nla.is_ok()) {
    std::fprintf(stderr, "memory registration failed\n");
    return 1;
  }

  // Fill the source buffer (in simulation, the backing store is poked
  // directly; on real hardware this would be a cudaMemcpy or a kernel).
  std::vector<std::uint8_t> payload(kSize);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 131 + 17);
  }
  n0.memory().write(src, payload);

  // 3. PUT: node0 -> node1. The CPU builds the 192-bit work request,
  //    writes it to the BAR requester page, then consumes the requester
  //    notification (transfer started) while node1 waits for its
  //    completer notification (data arrived).
  extoll::WorkRequest put;
  put.cmd = extoll::RmaCmd::kPut;
  put.port = 0;
  put.size = kSize;
  put.notify_requester = true;
  put.notify_completer = true;
  put.src_nla = *src_nla;
  put.dst_nla = *dst_nla;

  sim::Trigger put_sent, put_landed;
  auto t1 = port0->post(n0.cpu(), put);
  auto t2 = port0->wait_requester(n0.cpu(), &put_sent);
  auto t3 = port1->wait_completer(n1.cpu(), &put_landed);
  cluster.run_until([&] { return put_sent.fired() && put_landed.fired(); });
  std::printf("put: %u bytes delivered at t=%.2f us\n", kSize,
              to_us(cluster.sim().now()));

  // 4. GET: node0 pulls the data back from node1 into a third buffer.
  extoll::WorkRequest get;
  get.cmd = extoll::RmaCmd::kGet;
  get.port = 0;
  get.size = kSize;
  get.notify_completer = true;  // fires at node0 when the data landed
  get.src_nla = *dst_nla;       // remote source
  get.dst_nla = *back_nla;      // local destination

  sim::Trigger got;
  auto t4 = port0->post(n0.cpu(), get);
  auto t5 = port0->wait_completer(n0.cpu(), &got);
  cluster.run_until([&] { return got.fired(); });
  std::printf("get: %u bytes pulled back at t=%.2f us\n", kSize,
              to_us(cluster.sim().now()));

  // 5. Verify both hops byte for byte.
  std::vector<std::uint8_t> at_dst(kSize), at_back(kSize);
  n1.memory().read(dst, at_dst);
  n0.memory().read(back, at_back);
  if (at_dst != payload || at_back != payload) {
    std::fprintf(stderr, "payload mismatch!\n");
    return 1;
  }
  std::printf("verified: all %u bytes match after put+get round trip\n",
              kSize);
  std::printf("NIC stats: node1 completed %llu puts, node0 completed %llu "
              "gets, 0 protocol violations\n",
              static_cast<unsigned long long>(n1.extoll().puts_completed()),
              static_cast<unsigned long long>(n0.extoll().gets_completed()));
  return 0;
}
