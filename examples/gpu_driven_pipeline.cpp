// GPU-driven pipeline: a producer kernel on node0 generates records and
// streams each one to node1 with DEVICE-SIDE InfiniBand verbs - the
// GPU builds WQEs, rings doorbells and polls completions with no CPU
// involvement after launch. A consumer kernel on node1 polls for each
// record's arrival (in-order RC delivery) and folds it into a running
// checksum in GPU memory.
//
// This is the end state the paper argues toward: the entire
// produce -> communicate -> consume loop lives on the GPUs, built from
// the device put/get library (emit_ib_post_send / emit_poll_equals).
#include <cstdio>

#include "putget/device_lib.h"
#include "putget/ib_host.h"
#include "sys/testbed.h"

using namespace pg;

namespace {

constexpr std::uint32_t kRecords = 32;
constexpr std::uint32_t kRecordWords = 8;  // 64-byte records
constexpr std::uint32_t kRecordBytes = kRecordWords * 8;

/// Producer: per round, synthesize a record (f(round, word)), tag its
/// last word with the round number, post an RDMA write, retire the
/// completion, repeat.
gpu::Program build_producer(const putget::IbPostSendTemplate& tmpl,
                            mem::Addr qpc, mem::Addr laddr,
                            mem::Addr raddr) {
  gpu::Assembler a("pipeline_producer");
  using gpu::Cmp;
  using gpu::Reg;
  const Reg round(8), qpc_r(9), laddr_r(10), raddr_r(11), wr_id(12);
  const Reg word(13), addr(14), val(15), status(16);
  const Reg s0(23), s1(24), s2(25), s3(26), s4(27), s5(28);
  a.movi(round, 0);
  a.movi(qpc_r, static_cast<std::int64_t>(qpc));
  a.movi(laddr_r, static_cast<std::int64_t>(laddr));
  a.movi(raddr_r, static_cast<std::int64_t>(raddr));
  a.bind("round_loop");
  // Synthesize the record: word w = (round+1) * 1000003 + w * 7.
  a.movi(word, 0);
  a.bind("gen_loop");
  a.addi(val, round, 1);
  a.muli(val, val, 1000003);
  a.muli(addr, word, 7);
  a.add(val, val, addr);
  a.muli(addr, word, 8);
  a.add(addr, addr, laddr_r);
  a.st(addr, val, 0, 8);
  a.addi(word, word, 1);
  a.setpi(Cmp::kLtU, s0, word, kRecordWords - 1);
  a.bra_if(s0, "gen_loop");
  // Last word carries the round tag (the consumer polls it).
  a.addi(val, round, 1);
  a.muli(addr, word, 8);
  a.add(addr, addr, laddr_r);
  a.st(addr, val, 0, 8);
  // Ship it: device-side ibv_post_send + ibv_poll_cq.
  a.mov(wr_id, round);
  putget::emit_ib_post_send(a, {qpc_r, laddr_r, raddr_r, wr_id}, tmpl, s0,
                            s1, s2, s3, s4, s5);
  putget::emit_ib_poll_cq(a, qpc_r, status, s0, s1, s2, s3, s4, s5);
  a.addi(round, round, 1);
  a.setpi(Cmp::kLtU, s0, round, kRecords);
  a.bra_if(s0, "round_loop");
  a.exit();
  auto p = a.finish();
  if (!p.is_ok()) std::abort();
  return std::move(p).value();
}

/// Consumer: per round, poll the record's tag word (device memory; L2
/// until the NIC's DMA write invalidates the line), then fold all words
/// into the checksum cell.
gpu::Program build_consumer(mem::Addr recv, mem::Addr checksum) {
  gpu::Assembler a("pipeline_consumer");
  using gpu::Cmp;
  using gpu::Reg;
  const Reg round(8), recv_r(9), sum_addr(10), tag(11);
  const Reg word(12), addr(13), val(14), sum(15);
  const Reg s0(23), s1(24);
  a.movi(round, 0);
  a.movi(recv_r, static_cast<std::int64_t>(recv));
  a.movi(sum_addr, static_cast<std::int64_t>(checksum));
  a.movi(sum, 0);
  a.bind("round_loop");
  a.addi(tag, round, 1);
  {
    const Reg tag_addr(16);
    a.movi(tag_addr,
           static_cast<std::int64_t>(recv + (kRecordWords - 1) * 8));
    putget::emit_poll_equals(a, tag_addr, tag, 8, s0, s1);
  }
  // Fold the record into the checksum.
  a.movi(word, 0);
  a.bind("fold_loop");
  a.muli(addr, word, 8);
  a.add(addr, addr, recv_r);
  a.ld(val, addr, 0, 8);
  a.add(sum, sum, val);
  a.addi(word, word, 1);
  a.setpi(Cmp::kLtU, s0, word, kRecordWords);
  a.bra_if(s0, "fold_loop");
  a.st(sum_addr, sum, 0, 8);
  a.addi(round, round, 1);
  a.setpi(Cmp::kLtU, s0, round, kRecords);
  a.bra_if(s0, "round_loop");
  a.exit();
  auto p = a.finish();
  if (!p.is_ok()) std::abort();
  return std::move(p).value();
}

}  // namespace

int main() {
  sys::Cluster cluster(sys::ib_testbed());
  sys::Node& n0 = cluster.node(0);
  sys::Node& n1 = cluster.node(1);

  // Verbs resources with GPU-resident queues (the paper's bufOnGPU).
  putget::IbHostEndpoint::Options opts;
  opts.location = putget::QueueLocation::kGpuMemory;
  auto ep0 = putget::IbHostEndpoint::create(n0, opts);
  auto ep1 = putget::IbHostEndpoint::create(n1, opts);
  if (!ep0.is_ok() || !ep1.is_ok()) return 1;
  putget::IbHostEndpoint::connect(*ep0, *ep1);

  const mem::Addr laddr = n0.gpu_heap().alloc(kRecordBytes, 64);
  const mem::Addr recv = n1.gpu_heap().alloc(kRecordBytes, 64);
  const mem::Addr checksum = n1.gpu_heap().alloc(8, 8);
  auto mr0 = ep0->reg_mr(laddr, kRecordBytes, mem::Access::kReadWrite);
  auto mr1 = ep1->reg_mr(recv, kRecordBytes, mem::Access::kReadWrite);
  if (!mr0.is_ok() || !mr1.is_ok()) return 1;

  // Device-side QP context + QP table for the producer's verbs calls.
  const mem::Addr qp_table = n0.gpu_heap().alloc(8 * 8, 64);
  for (int i = 0; i < 7; ++i) {
    n0.memory().write_u64(qp_table + i * 8, 0xAAAA0000ull + i);
  }
  n0.memory().write_u64(qp_table + 7 * 8, ep0->qp().qpn);
  const mem::Addr qpc = n0.gpu_heap().alloc(putget::kQpContextBytes, 64);
  n0.memory().write_u64(qpc + putget::kQpcSqBuffer, ep0->qp().sq_buffer);
  n0.memory().write_u64(qpc + putget::kQpcSqMask, ep0->qp().sq_entries - 1);
  n0.memory().write_u64(qpc + putget::kQpcSqPi, 0);
  n0.memory().write_u64(qpc + putget::kQpcSqDoorbell, ep0->qp().sq_doorbell);
  n0.memory().write_u64(qpc + putget::kQpcCqBuffer, ep0->cq().info().buffer);
  n0.memory().write_u64(qpc + putget::kQpcCqMask,
                        ep0->cq().info().entries - 1);
  n0.memory().write_u64(qpc + putget::kQpcCqCi, 0);
  n0.memory().write_u64(qpc + putget::kQpcCqCiCell, ep0->cq().info().ci_addr);
  n0.memory().write_u64(qpc + putget::kQpcQpTable, qp_table);
  n0.memory().write_u64(qpc + putget::kQpcQpTableLen, 8);
  n0.memory().write_u64(qpc + putget::kQpcQpn, ep0->qp().qpn);

  putget::IbPostSendTemplate tmpl;
  tmpl.opcode = ib::WqeOpcode::kRdmaWrite;
  tmpl.signaled = true;
  tmpl.byte_len = kRecordBytes;
  tmpl.lkey = mr0->lkey;
  tmpl.rkey = mr1->rkey;

  const gpu::Program producer = build_producer(tmpl, qpc, laddr, recv);
  const gpu::Program consumer = build_consumer(recv, checksum);

  bool prod_done = false, cons_done = false;
  n0.gpu().launch({.program = &producer, .params = {}},
                  [&] { prod_done = true; });
  n1.gpu().launch({.program = &consumer, .params = {}},
                  [&] { cons_done = true; });
  const bool ok =
      cluster.run_until([&] { return prod_done && cons_done; });
  if (!ok) {
    std::fprintf(stderr, "pipeline did not converge\n");
    return 1;
  }
  // Drain in-flight posted writes before reading results.
  cluster.sim().run_until(cluster.sim().now() + microseconds(100));

  // Expected checksum, computed on the host.
  std::uint64_t expect = 0;
  for (std::uint32_t r = 1; r <= kRecords; ++r) {
    for (std::uint32_t w = 0; w + 1 < kRecordWords; ++w) {
      expect += static_cast<std::uint64_t>(r) * 1000003 + w * 7;
    }
    expect += r;  // tag word
  }
  const std::uint64_t got = n1.memory().read_u64(checksum);
  if (got != expect) {
    std::fprintf(stderr, "checksum mismatch: %llu != %llu\n",
                 static_cast<unsigned long long>(got),
                 static_cast<unsigned long long>(expect));
    return 1;
  }
  std::printf("pipeline: %u records (%u B each) streamed GPU->GPU with "
              "device-side verbs\n",
              kRecords, kRecordBytes);
  std::printf("checksum verified (%llu); simulated time %.1f us; "
              "%llu HCA messages\n",
              static_cast<unsigned long long>(got),
              to_us(cluster.sim().now()),
              static_cast<unsigned long long>(
                  n1.hca().messages_delivered()));
  std::printf("producer GPU executed %llu instructions with zero CPU "
              "involvement after launch\n",
              static_cast<unsigned long long>(
                  n0.gpu().counters().instructions_executed));
  return 0;
}
