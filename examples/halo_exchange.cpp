// Halo exchange: a 1-D diffusion stencil distributed over a ring of
// GPUs, with per-iteration boundary exchange over the put/get fabric.
//
// This is the hybrid programming model the paper's introduction
// motivates: GPU kernels compute, one-sided puts move halos. The heavy
// lifting lives in putget/ring_workload.{h,cc} - a periodic stencil
// whose boundary cells cross the wire every step, verified against a
// single-host reference - and the same core backs the
// bench/ext_multinode_ring figure. This example runs it on the default
// four-node ring over both fabrics.
#include <cstdio>

#include "putget/ring_workload.h"
#include "sys/testbed.h"

using namespace pg;

int main() {
  for (putget::RingBackend backend :
       {putget::RingBackend::kExtoll, putget::RingBackend::kIb}) {
    sys::ClusterConfig cfg = backend == putget::RingBackend::kExtoll
                                 ? sys::extoll_testbed()
                                 : sys::ib_testbed();
    cfg.num_nodes = 4;
    cfg.topology = net::Topology::kRing;

    putget::RingConfig ring;
    ring.backend = backend;
    ring.cells_per_node = 64;
    ring.iterations = 24;

    const putget::RingResult r = putget::run_ring_halo_exchange(cfg, ring);
    if (!r.verified) {
      std::fprintf(stderr, "halo exchange FAILED over %s\n",
                   putget::ring_backend_name(backend));
      return 1;
    }
    std::printf("halo exchange over %s: %u iterations on a %d-node ring "
                "(%u cells each) verified against the host reference\n",
                putget::ring_backend_name(backend), r.iterations,
                r.num_nodes, r.cells_per_node);
    std::printf("  simulated time %.1f us; %llu halo messages delivered "
                "exactly once; field mass %llu\n",
                r.sim_time_us,
                static_cast<unsigned long long>(r.delivered),
                static_cast<unsigned long long>(r.checksum));
  }
  return 0;
}
