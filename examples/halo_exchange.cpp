// Halo exchange: a 1-D diffusion stencil distributed over the two GPUs,
// with per-iteration boundary exchange over the EXTOLL RMA fabric.
//
// This is the hybrid programming model the paper's introduction
// motivates: GPU kernels compute, one-sided puts move halos. Each node
// owns half of a 1-D integer field; after every stencil step the
// boundary cell is put into the neighbour's halo slot, with completer
// notifications providing the arrival guarantee before the next step.
//
// The stencil kernel is written in the simulator's PTX-lite ISA - the
// same ISA the put/get device library uses - and runs 64 threads per
// step with a block-wide barrier, exercising real SIMT machinery.
//
// The distributed result is verified against a single-host reference.
#include <cstdio>
#include <vector>

#include "gpu/assembler.h"
#include "putget/extoll_host.h"
#include "sys/testbed.h"

using namespace pg;

namespace {

constexpr std::uint32_t kCellsPerNode = 64;  // owned cells per node
constexpr std::uint32_t kIterations = 24;

// Field layout per node (u64 cells): [0] left halo, [1..64] owned,
// [65] right halo. Two buffers alternate per step.
constexpr std::uint64_t kFieldCells = kCellsPerNode + 2;

/// Builds one diffusion step: next[i] = (cur[i-1] + cur[i+1]) / 2 for the
/// owned cells; halos are read, not written.
gpu::Program build_stencil_kernel() {
  gpu::Assembler a("diffusion_step");
  using gpu::Cmp;
  using gpu::Reg;
  using gpu::Sreg;
  const Reg cur(4), next(5);  // kernel params: buffer base addresses
  const Reg tid(8), addr(9), left(10), right(11), val(12);
  a.sreg(tid, Sreg::kTidX);
  // cell index = tid + 1 (skip the left halo slot)
  a.addi(tid, tid, 1);
  a.muli(addr, tid, 8);
  a.add(addr, addr, cur);
  a.ld(left, addr, -8, 8);
  a.ld(right, addr, 8, 8);
  a.add(val, left, right);
  a.shri(val, val, 1);
  a.muli(addr, tid, 8);
  a.add(addr, addr, next);
  a.st(addr, val, 0, 8);
  a.exit();
  auto p = a.finish();
  if (!p.is_ok()) std::abort();
  return std::move(p).value();
}

/// Host-side reference of the same scheme over the full domain.
std::vector<std::uint64_t> reference(std::vector<std::uint64_t> field,
                                     unsigned iterations) {
  // field has 2*kCellsPerNode cells, fixed zero boundaries.
  std::vector<std::uint64_t> next(field.size());
  for (unsigned it = 0; it < iterations; ++it) {
    for (std::size_t i = 0; i < field.size(); ++i) {
      const std::uint64_t left = i == 0 ? 0 : field[i - 1];
      const std::uint64_t right = i + 1 == field.size() ? 0 : field[i + 1];
      next[i] = (left + right) / 2;
    }
    field.swap(next);
  }
  return field;
}

}  // namespace

int main() {
  sys::Cluster cluster(sys::extoll_testbed());
  sys::Node& n0 = cluster.node(0);
  sys::Node& n1 = cluster.node(1);

  // Field buffers (double buffered) in each GPU's memory.
  const mem::Addr f0[2] = {n0.gpu_heap().alloc(kFieldCells * 8, 64),
                           n0.gpu_heap().alloc(kFieldCells * 8, 64)};
  const mem::Addr f1[2] = {n1.gpu_heap().alloc(kFieldCells * 8, 64),
                           n1.gpu_heap().alloc(kFieldCells * 8, 64)};

  // Registrations: the peer needs to write into our halo slots.
  auto reg = [](sys::Node& n, mem::Addr a) {
    auto r = n.extoll().register_memory(a, kFieldCells * 8,
                                        mem::Access::kReadWrite);
    if (!r.is_ok()) std::abort();
    return *r;
  };
  const extoll::Nla nla_f0[2] = {reg(n0, f0[0]), reg(n0, f0[1])};
  const extoll::Nla nla_f1[2] = {reg(n1, f1[0]), reg(n1, f1[1])};

  auto port0 = putget::ExtollHostPort::open(n0.extoll(), 0);
  auto port1 = putget::ExtollHostPort::open(n1.extoll(), 0);
  if (!port0.is_ok() || !port1.is_ok()) return 1;

  // Initial condition: a spike in the middle of node0's half.
  std::vector<std::uint64_t> init(2 * kCellsPerNode, 0);
  init[kCellsPerNode / 2] = 1 << 20;
  init[kCellsPerNode + 3] = 1 << 16;  // and one in node1's half
  for (std::uint32_t i = 0; i < kCellsPerNode; ++i) {
    n0.memory().write_u64(f0[0] + (i + 1) * 8, init[i]);
    n1.memory().write_u64(f1[0] + (i + 1) * 8, init[kCellsPerNode + i]);
  }

  const gpu::Program stencil = build_stencil_kernel();

  // One distributed iteration: both GPUs step, then the boundary cells
  // cross the wire into the neighbour halos of the *next* buffer.
  for (std::uint32_t it = 0; it < kIterations; ++it) {
    const int cur = it % 2;
    const int nxt = 1 - cur;
    bool done0 = false, done1 = false;
    n0.gpu().launch({.program = &stencil,
                     .threads_per_block = kCellsPerNode,
                     .params = {f0[cur], f0[nxt]}},
                    [&] { done0 = true; });
    n1.gpu().launch({.program = &stencil,
                     .threads_per_block = kCellsPerNode,
                     .params = {f1[cur], f1[nxt]}},
                    [&] { done1 = true; });
    cluster.run_until([&] { return done0 && done1; });

    // Halo exchange on the freshly computed buffer:
    //   node0's rightmost owned cell -> node1's left halo,
    //   node1's leftmost owned cell  -> node0's right halo.
    extoll::WorkRequest right_edge;
    right_edge.cmd = extoll::RmaCmd::kPut;
    right_edge.port = 0;
    right_edge.size = 8;
    right_edge.notify_completer = true;
    right_edge.notify_requester = true;
    right_edge.src_nla = nla_f0[nxt] + kCellsPerNode * 8;  // owned cell 64
    right_edge.dst_nla = nla_f1[nxt] + 0;                  // left halo

    extoll::WorkRequest left_edge = right_edge;
    left_edge.src_nla = nla_f1[nxt] + 1 * 8;               // owned cell 1
    left_edge.dst_nla = nla_f0[nxt] + (kCellsPerNode + 1) * 8;

    sim::Trigger landed0, landed1;
    auto p0 = port0->post(n0.cpu(), right_edge);
    auto p1 = port1->post(n1.cpu(), left_edge);
    auto w0 = port0->wait_completer(n0.cpu(), &landed0);  // neighbour's cell
    auto w1 = port1->wait_completer(n1.cpu(), &landed1);
    cluster.run_until([&] { return landed0.fired() && landed1.fired(); });
  }

  // Gather and verify against the reference.
  const int fin = kIterations % 2;
  std::vector<std::uint64_t> got(2 * kCellsPerNode);
  for (std::uint32_t i = 0; i < kCellsPerNode; ++i) {
    got[i] = n0.memory().read_u64(f0[fin] + (i + 1) * 8);
    got[kCellsPerNode + i] = n1.memory().read_u64(f1[fin] + (i + 1) * 8);
  }
  const auto expect = reference(init, kIterations);
  std::uint64_t mass = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i] != expect[i]) {
      std::fprintf(stderr, "MISMATCH at cell %zu: %llu != %llu\n", i,
                   static_cast<unsigned long long>(got[i]),
                   static_cast<unsigned long long>(expect[i]));
      return 1;
    }
    mass += got[i];
  }
  std::printf("halo exchange: %u iterations over %u cells verified against "
              "the host reference\n",
              kIterations, 2 * kCellsPerNode);
  std::printf("simulated time %.1f us; remaining field mass %llu\n",
              to_us(cluster.sim().now()),
              static_cast<unsigned long long>(mass));
  return 0;
}
