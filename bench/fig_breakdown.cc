// Latency waterfall: decomposes the ping-pong half round trip of every
// transfer mode into named lifecycle stages (post, nic_fetch, wire,
// remote_dma, notify_write, poll_detect), for both fabrics.
//
// This reproduces the paper's counter-based explanation (Sec. V.C,
// Tables 1-2) as attributed numbers instead of inferred ones: the gap
// between dev2dev-direct and dev2dev-hostControlled at small sizes must
// show up in `poll_detect` - the GPU polling completion state over PCIe
// - not in the NIC or wire stages, which are mode-independent.
//
// Stages use chain-edge semantics (obs/flow.h), so per-message stage
// durations sum to the end-to-end latency by construction; this bench
// verifies the reconciliation (within 2%) and fails loudly otherwise,
// which makes it a regression check on the instrumentation itself.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/flow.h"
#include "putget/extoll_experiments.h"
#include "putget/ib_experiments.h"
#include "putget/modes.h"
#include "putget/results.h"
#include "sys/testbed.h"

namespace {

using pg::obs::FlowTable;

/// The canonical stage order of the message lifecycle.
constexpr const char* kStages[] = {"post",       "nic_fetch",    "wire",
                                   "remote_dma", "notify_write", "poll_detect"};
constexpr std::size_t kNumStages = sizeof(kStages) / sizeof(kStages[0]);

double stage_sum_ns(const FlowTable::Breakdown& b, const char* name) {
  for (const auto& s : b.stages) {
    if (s.name == name) return static_cast<double>(s.ns.sum());
  }
  return 0.0;
}

/// One column of the waterfall: per-message mean of each stage, their
/// sum, the lifecycle end-to-end mean, the driver-measured half RTT,
/// and the stage-sum/e2e reconciliation error in percent.
struct Column {
  std::string heading;
  double stage_us[kNumStages] = {};
  double stage_sum_us = 0.0;
  double e2e_us = 0.0;
  double half_rtt_us = 0.0;
  double recon_pct = 0.0;
};

bool fill_column(const std::string& label, const pg::putget::PingPongResult& r,
                 Column* col) {
  if (!r.payload_ok) {
    std::fprintf(stderr, "FAILED: %s payload mismatch\n", label.c_str());
    return false;
  }
  const FlowTable::Breakdown* b = pg::obs::flows()->find(label);
  if (b == nullptr || b->completed == 0) {
    std::fprintf(stderr, "FAILED: %s recorded no completed flows\n",
                 label.c_str());
    return false;
  }
  if (b->abandoned != 0) {
    std::fprintf(stderr, "FAILED: %s abandoned %llu flows\n", label.c_str(),
                 static_cast<unsigned long long>(b->abandoned));
    return false;
  }
  // Normalize by messages, not flows: a signaled WR contributes two
  // lifecycle flows (the message and its send-completion leg), and the
  // waterfall should charge both to the message that caused them.
  const double n = 2.0 * static_cast<double>(r.iterations);
  for (std::size_t i = 0; i < kNumStages; ++i) {
    col->stage_us[i] = stage_sum_ns(*b, kStages[i]) / n / 1000.0;
    col->stage_sum_us += col->stage_us[i];
  }
  col->e2e_us = static_cast<double>(b->e2e_ns.sum()) / n / 1000.0;
  col->half_rtt_us = r.half_rtt_us;
  col->recon_pct =
      col->e2e_us > 0.0
          ? 100.0 * std::fabs(col->stage_sum_us - col->e2e_us) / col->e2e_us
          : 0.0;
  if (col->recon_pct > 2.0) {
    std::fprintf(stderr,
                 "FAILED: %s stage sum %.3f us vs end-to-end %.3f us "
                 "(%.2f%% off)\n",
                 label.c_str(), col->stage_sum_us, col->e2e_us,
                 col->recon_pct);
    return false;
  }
  return true;
}

void emit_table(pg::bench::Session& session, const char* fabric,
                std::uint32_t size, const std::vector<Column>& cols) {
  std::vector<std::string> headings;
  for (const auto& c : cols) headings.push_back(c.heading);
  pg::bench::SeriesTable table("stage", headings);
  for (std::size_t i = 0; i < kNumStages; ++i) {
    std::vector<double> row;
    for (const auto& c : cols) row.push_back(c.stage_us[i]);
    table.add_row(kStages[i], row);
  }
  std::vector<double> sums, e2es, rtts, recons;
  for (const auto& c : cols) {
    sums.push_back(c.stage_sum_us);
    e2es.push_back(c.e2e_us);
    rtts.push_back(c.half_rtt_us);
    recons.push_back(c.recon_pct);
  }
  table.add_row("stage-sum", sums);
  table.add_row("end-to-end", e2es);
  table.add_row("half-rtt", rtts);
  table.add_row("recon[%]", recons);
  std::printf("--- %s, %u B messages [us/msg] ---\n", fabric, size);
  char name[64];
  std::snprintf(name, sizeof(name), "breakdown-%s-%uB", fabric, size);
  session.emit(name, table, "%12.3f");
}

/// Prints which stage the direct-vs-hostControlled latency gap lives in.
/// `direct` and `host` are columns of the same fabric+size table.
bool attribute_gap(const char* fabric, std::uint32_t size,
                   const Column& direct, const Column& host) {
  const double gap = direct.e2e_us - host.e2e_us;
  std::size_t top = 0;
  for (std::size_t i = 1; i < kNumStages; ++i) {
    if (direct.stage_us[i] - host.stage_us[i] >
        direct.stage_us[top] - host.stage_us[top]) {
      top = i;
    }
  }
  const double top_share =
      gap > 0.0 ? 100.0 * (direct.stage_us[top] - host.stage_us[top]) / gap
                : 0.0;
  std::printf(
      "gap attribution (%s, %u B): %s - %s = %+.3f us; largest stage "
      "delta: %s (%+.3f us, %.0f%% of gap)\n\n",
      fabric, size, direct.heading.c_str(), host.heading.c_str(), gap,
      kStages[top], direct.stage_us[top] - host.stage_us[top], top_share);
  // The paper's explanation, as a hard check: at small sizes direct mode
  // is slower, and the penalty is completion polling over PCIe.
  if (size <= 64 &&
      (gap <= 0.0 || std::strcmp(kStages[top], "poll_detect") != 0)) {
    std::fprintf(stderr,
                 "FAILED: %s %u B direct-vs-hostControlled gap is not "
                 "dominated by poll_detect (gap %+.3f us, top stage %s)\n",
                 fabric, size, gap, kStages[top]);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (pg::bench::handle_list_flag(argc, argv, "fig-breakdown",
                                   {"breakdown-extoll-<size>B", "breakdown-ib-<size>B"})) {
    return 0;
  }
  pg::bench::Session session(argc, argv);
  using namespace pg;
  using putget::QueueLocation;
  using putget::TransferMode;

  // The waterfall needs lifecycle tracking even for plain stdout runs;
  // attach a local table when the session did not (no --trace/--json).
  obs::FlowTable local;
  const bool own_flows = obs::flows() == nullptr;
  if (own_flows) obs::attach_flows(&local);

  bench::print_title(
      "Latency waterfall - ping-pong half RTT decomposed by lifecycle stage",
      "chain-edge stages; per-mode stage sums reconcile with end-to-end");

  bool ok = true;
  const std::uint32_t kSizes[] = {8u, 4096u};
  const std::uint32_t kIters = 30;

  // EXTOLL: the four Fig 1 / Table I transfer modes.
  {
    const auto cfg = sys::extoll_testbed();
    const TransferMode kModes[] = {
        TransferMode::kGpuDirect, TransferMode::kGpuPollDevice,
        TransferMode::kHostAssisted, TransferMode::kHostControlled};
    for (std::uint32_t size : kSizes) {
      std::vector<Column> cols;
      for (TransferMode mode : kModes) {
        const auto r = putget::run_extoll_pingpong(cfg, mode, size, kIters);
        const std::string label = putget::op_label("extoll-pingpong", mode,
                                                   size);
        Column col;
        col.heading = putget::transfer_mode_name(mode);
        if (!fill_column(label, r, &col)) ok = false;
        cols.push_back(col);
      }
      emit_table(session, "extoll", size, cols);
      if (!attribute_gap("extoll", size, cols.front(), cols.back()))
        ok = false;
    }
  }

  // InfiniBand: the four Fig 4 / Table II cases. The direct analog of
  // EXTOLL's notification polling is bufOnHost: the GPU spins on a CQ
  // in system memory across PCIe.
  {
    const auto cfg = sys::ib_testbed();
    struct Case {
      TransferMode mode;
      QueueLocation loc;
      const char* heading;
    };
    const Case kCases[] = {
        {TransferMode::kGpuDirect, QueueLocation::kGpuMemory,
         "dev2dev-bufOnGPU"},
        {TransferMode::kGpuDirect, QueueLocation::kHostMemory,
         "dev2dev-bufOnHost"},
        {TransferMode::kHostAssisted, QueueLocation::kHostMemory,
         "dev2dev-assisted"},
        {TransferMode::kHostControlled, QueueLocation::kHostMemory,
         "dev2dev-hostControlled"},
    };
    for (std::uint32_t size : kSizes) {
      std::vector<Column> cols;
      for (const Case& c : kCases) {
        const auto r =
            putget::run_ib_pingpong(cfg, c.mode, c.loc, size, kIters);
        const std::string label =
            putget::op_label("ib-pingpong",
                             putget::transfer_mode_name(c.mode), size) +
            "/" + putget::queue_location_name(c.loc);
        Column col;
        col.heading = c.heading;
        if (!fill_column(label, r, &col)) ok = false;
        cols.push_back(col);
      }
      emit_table(session, "ib", size, cols);
      if (!attribute_gap("ib", size, cols[1], cols.back())) ok = false;
    }
  }

  if (own_flows) obs::attach_flows(nullptr);
  if (!ok) {
    std::fprintf(stderr, "fig_breakdown: FAILED\n");
    return 1;
  }
  return 0;
}
