// SHMEM 2-D halo exchange: an additive 5-point stencil over a torus of
// PEs, four notification puts per PE per iteration (contiguous rows
// direct from the field, strided columns through GPU pack/unpack
// kernels and staging buffers). The same user code runs on both
// fabrics; each cell is verified against a host reference of the full
// global torus, and the two backends must agree on the checksum.
#include <cstdio>

#include "bench_util.h"
#include "shmem/workloads.h"

int main(int argc, char** argv) {
  if (pg::bench::handle_list_flag(
          argc, argv, "shmem-halo2d",
          {"extoll[us/iter]", "ib[us/iter]", "puts/iter"},
          /*threads=*/true)) {
    return 0;
  }
  pg::bench::Session session(argc, argv);
  using namespace pg;
  using putget::RmaBackend;

  bench::print_title(
      "SHMEM 2-D halo exchange - 5-point stencil on a PE torus",
      "2x2 PEs; 4 notification puts per PE per iteration; verified");

  auto run = [&](RmaBackend backend, std::uint32_t nx, std::uint32_t ny) {
    shmem::Halo2dConfig cfg;
    cfg.backend = backend;
    cfg.px = 2;
    cfg.py = 2;
    cfg.nx = nx;
    cfg.ny = ny;
    cfg.iterations = 6;
    cfg.threads = session.threads();
    cfg.sample_every = session.sample_every();
    const auto r = shmem::run_halo2d(cfg);
    if (!r.verified || r.notified_total != r.halo_puts) {
      std::fprintf(stderr, "FAILED: %s %ux%u: %s\n",
                   putget::rma_backend_name(backend), nx, ny,
                   r.error.empty() ? "field mismatch" : r.error.c_str());
      std::exit(1);
    }
    return r;
  };

  bench::SeriesTable table("tile",
                           {"extoll[us/iter]", "ib[us/iter]", "puts/iter"});
  for (std::uint32_t tile : {4u, 8u, 16u}) {
    const auto ext = run(RmaBackend::kExtoll, tile, tile);
    const auto ib = run(RmaBackend::kIb, tile, tile);
    if (ext.checksum != ib.checksum) {
      std::fprintf(stderr, "FAILED: backend checksum mismatch at %u\n", tile);
      return 1;
    }
    char label[24];
    std::snprintf(label, sizeof(label), "%ux%u", tile, tile);
    table.add_row(label,
                  {ext.sim_time_us / ext.iterations,
                   ib.sim_time_us / ib.iterations,
                   static_cast<double>(ext.halo_puts / ext.iterations)});
  }
  session.emit("shmem-halo2d", table, "%12.2f");
  return 0;
}
