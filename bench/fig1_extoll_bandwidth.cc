// Reproduces Fig. 1b: EXTOLL streaming bandwidth vs transfer size.
//
// Paper shape: a persistent gap between GPU-controlled and CPU-controlled
// streaming (requester-notification polling from the GPU), saturation
// below 1 GB/s, and a bandwidth DROP for messages beyond 1 MiB caused by
// the PCIe peer-to-peer read pathology.
#include <cstdio>

#include "bench_util.h"
#include "putget/extoll_experiments.h"
#include "sys/testbed.h"

int main(int argc, char** argv) {
  if (pg::bench::handle_list_flag(argc, argv, "fig1b-extoll-bandwidth",
                                   {"dev2dev-direct", "dev2dev-assisted", "dev2dev-hostControlled"})) {
    return 0;
  }
  pg::bench::Session session(argc, argv);
  using namespace pg;
  using putget::TransferMode;
  bench::print_title("Fig 1b - EXTOLL RMA streaming bandwidth [MB/s]",
                     "GPU->GPU puts; note the drop past 1M (P2P reads)");
  const auto cfg = sys::extoll_testbed();
  const TransferMode modes[] = {TransferMode::kGpuDirect,
                                TransferMode::kHostAssisted,
                                TransferMode::kHostControlled};
  bench::SeriesTable table("size[B]",
                           {"dev2dev-direct", "dev2dev-assisted",
                            "dev2dev-hostControlled"});
  for (std::uint32_t size :
       {64u, 256u, 1024u, 4096u, 16384u, 65536u, 262144u, 1048576u,
        4194304u}) {
    // Keep total volume roughly constant so runs stay comparable.
    const std::uint32_t messages =
        std::max<std::uint32_t>(6, std::min<std::uint32_t>(64, (8u << 20) / size));
    std::vector<double> row;
    for (TransferMode mode : modes) {
      const auto r = putget::run_extoll_bandwidth(cfg, mode, size, messages);
      if (!r.payload_ok) {
        std::fprintf(stderr, "FAILED: %s at %u bytes\n",
                     putget::transfer_mode_name(mode), size);
        return 1;
      }
      row.push_back(r.mb_per_s);
    }
    table.add_row(bench::size_label(size), row);
  }
  session.emit("fig1b-extoll-bandwidth", table);
  return 0;
}
