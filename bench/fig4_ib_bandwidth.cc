// Reproduces Fig. 4b: InfiniBand streaming bandwidth vs transfer size.
//
// Paper shape: bandwidth saturates around 1 GB/s despite the 6.8 GB/s
// FDR link (PCIe peer-to-peer read ceiling on the GPU source) and
// decreases for messages beyond 1 MiB.
#include <cstdio>

#include "bench_util.h"
#include "putget/ib_experiments.h"
#include "sys/testbed.h"

int main(int argc, char** argv) {
  if (pg::bench::handle_list_flag(argc, argv, "fig4b-ib-bandwidth",
                                   {"dev2dev-bufOnGPU", "dev2dev-bufOnHost", "dev2dev-assisted", "dev2dev-hostControlled"})) {
    return 0;
  }
  pg::bench::Session session(argc, argv);
  using namespace pg;
  using putget::QueueLocation;
  using putget::TransferMode;
  bench::print_title("Fig 4b - InfiniBand streaming bandwidth [MB/s]",
                     "GPU->GPU RDMA writes");
  const auto cfg = sys::ib_testbed();
  bench::SeriesTable table(
      "size[B]", {"dev2dev-bufOnGPU", "dev2dev-bufOnHost",
                  "dev2dev-assisted", "dev2dev-hostControlled"});
  for (std::uint32_t size :
       {64u, 256u, 1024u, 4096u, 16384u, 65536u, 262144u, 1048576u,
        4194304u}) {
    const std::uint32_t messages =
        std::max<std::uint32_t>(6, std::min<std::uint32_t>(48, (8u << 20) / size));
    struct Case {
      TransferMode mode;
      QueueLocation loc;
    };
    const Case cases[] = {
        {TransferMode::kGpuDirect, QueueLocation::kGpuMemory},
        {TransferMode::kGpuDirect, QueueLocation::kHostMemory},
        {TransferMode::kHostAssisted, QueueLocation::kHostMemory},
        {TransferMode::kHostControlled, QueueLocation::kHostMemory}};
    std::vector<double> row;
    for (const Case& c : cases) {
      const auto r =
          putget::run_ib_bandwidth(cfg, c.mode, c.loc, size, messages);
      if (!r.payload_ok) {
        std::fprintf(stderr, "FAILED at %u bytes\n", size);
        return 1;
      }
      row.push_back(r.mb_per_s);
    }
    table.add_row(bench::size_label(size), row);
  }
  session.emit("fig4b-ib-bandwidth", table);
  return 0;
}
