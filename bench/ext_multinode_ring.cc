// Extension: N-node ring halo exchange over both fabrics.
//
// Scales the paper's two-node testbed out to a ring of N GPUs and runs
// the hybrid stencil+put workload (compute on every GPU, one-sided halo
// puts between neighbours) over the EXTOLL RMA and InfiniBand verbs
// backends. Every cell of the distributed result is checked against a
// host reference of the full periodic domain; a run that fails
// verification fails the bench.
#include <cstdio>

#include "bench_util.h"
#include "putget/ring_workload.h"
#include "sys/testbed.h"

int main(int argc, char** argv) {
  if (pg::bench::handle_list_flag(argc, argv, "ext-multinode-ring",
                                   {"extoll[us/iter]", "ib[us/iter]", "extoll msgs", "ib msgs"},
                                   /*threads=*/true, /*topology=*/true)) {
    return 0;
  }
  pg::bench::Session session(argc, argv);
  using namespace pg;
  using putget::RingBackend;
  using putget::RingConfig;
  using putget::RingResult;
  const net::Topology topo = session.topology(net::Topology::kRing);
  bench::print_title(
      "Extension - N-node ring halo exchange, EXTOLL vs InfiniBand",
      topo == net::Topology::kRing
          ? std::string("per-iteration time [us] for one stencil step + halo "
                        "exchange; verified against the host reference")
          : std::string("per-iteration time [us] for one stencil step + halo "
                        "exchange over the ") +
                net::topology_name(topo) +
                " wiring; verified against the host reference");

  // Node counts valid for the wiring shape: the torus needs a
  // factorable n >= 4; the logical ring itself runs on any connected
  // topology (non-adjacent neighbours relay through the fabric).
  std::vector<int> node_counts = {2, 3, 4};
  if (topo == net::Topology::kTorus2D) node_counts = {4, 8};
  if (topo == net::Topology::kFatTree) node_counts = {4, 8};
  if (topo == net::Topology::kPair) node_counts = {2};

  const RingBackend backends[] = {RingBackend::kExtoll, RingBackend::kIb};
  bench::SeriesTable table("nodes", {"extoll[us/iter]", "ib[us/iter]",
                                     "extoll msgs", "ib msgs"});
  for (int nodes : node_counts) {
    std::vector<double> row;
    std::vector<double> msgs;
    for (RingBackend backend : backends) {
      sys::ClusterConfig cfg = backend == RingBackend::kExtoll
                                   ? sys::extoll_testbed()
                                   : sys::ib_testbed();
      cfg.num_nodes = nodes;
      cfg.topology = topo;
      cfg.sample_every = session.sample_every();
      RingConfig ring;
      ring.backend = backend;
      ring.threads = session.threads();
      const RingResult r = putget::run_ring_halo_exchange(cfg, ring);
      if (!r.verified) {
        std::fprintf(stderr, "FAILED: %s ring with %d nodes\n",
                     putget::ring_backend_name(backend), nodes);
        return 1;
      }
      if (r.delivered != r.halo_messages) {
        std::fprintf(stderr,
                     "FAILED: %s ring with %d nodes delivered %llu of %llu "
                     "halo messages\n",
                     putget::ring_backend_name(backend), nodes,
                     static_cast<unsigned long long>(r.delivered),
                     static_cast<unsigned long long>(r.halo_messages));
        return 1;
      }
      row.push_back(r.sim_time_us / r.iterations);
      msgs.push_back(static_cast<double>(r.halo_messages));
    }
    table.add_row(std::to_string(nodes),
                  {row[0], row[1], msgs[0], msgs[1]});
  }
  session.emit("ext-multinode-ring", table);
  return 0;
}
