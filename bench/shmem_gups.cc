// SHMEM GUPS: random 8-byte remote updates through the symmetric-heap
// API (HPCC RandomAccess flavour). One user code path, both fabrics —
// the backend is a config enum — and three driving styles: host
// put-with-notification streams, remote fetch-and-add, and GPU-driven
// put-list kernels compiled from the same symmetric offsets.
//
// Every cell is a *verified* run: the final table state is checked
// against a host replay of the generated update stream before the rate
// is reported.
#include <cstdio>

#include "bench_util.h"
#include "shmem/workloads.h"

int main(int argc, char** argv) {
  if (pg::bench::handle_list_flag(
          argc, argv, "shmem-gups",
          {"extoll host", "extoll gpu", "ib host", "ib gpu",
           "extoll amo p50", "extoll amo p99", "ib amo p50", "ib amo p99"},
          /*threads=*/true)) {
    return 0;
  }
  pg::bench::Session session(argc, argv);
  using namespace pg;
  using shmem::GupsConfig;
  using shmem::GupsMode;
  using putget::RmaBackend;

  bench::print_title(
      "SHMEM GUPS - random remote updates, symmetric heap [MUPS]",
      "4 PEs full mesh; host put-notify vs GPU put-list; verified replay");

  auto run = [&](RmaBackend backend, GupsMode mode, std::uint32_t updates,
                 double zipf) {
    GupsConfig cfg;
    cfg.backend = backend;
    cfg.mode = mode;
    cfg.num_pes = 4;
    cfg.updates_per_pe = updates;
    cfg.table_words = 64;
    cfg.zipf_s = zipf;
    cfg.threads = session.threads();
    cfg.sample_every = session.sample_every();
    const auto r = shmem::run_gups(cfg);
    if (!r.verified) {
      std::fprintf(stderr, "FAILED: %s/%s %u updates: %s\n",
                   putget::rma_backend_name(backend),
                   shmem::gups_mode_name(mode), updates,
                   r.error.empty() ? "table mismatch" : r.error.c_str());
      std::exit(1);
    }
    return r;
  };

  {
    bench::SeriesTable table(
        "updates/PE", {"extoll host", "extoll gpu", "ib host", "ib gpu"});
    for (std::uint32_t updates : {16u, 32u, 64u}) {
      std::vector<double> row;
      for (RmaBackend b : {RmaBackend::kExtoll, RmaBackend::kIb}) {
        for (GupsMode m : {GupsMode::kPutNotify, GupsMode::kGpu}) {
          row.push_back(run(b, m, updates, 0.0).gups * 1e3);  // MUPS
        }
      }
      char label[16];
      std::snprintf(label, sizeof(label), "%u", updates);
      table.add_row(label, row);
    }
    session.emit("shmem-gups-uniform", table, "%12.3f");
  }

  {
    // Zipf skew concentrates updates on hot words; the rate barely
    // moves because per-origin columns keep the streams conflict-free.
    bench::SeriesTable table("zipf s", {"extoll host", "ib host"});
    for (double s : {0.0, 0.8, 1.2}) {
      std::vector<double> row;
      for (RmaBackend b : {RmaBackend::kExtoll, RmaBackend::kIb}) {
        row.push_back(run(b, GupsMode::kPutNotify, 48, s).gups * 1e3);
      }
      char label[16];
      std::snprintf(label, sizeof(label), "%.1f", s);
      table.add_row(label, row);
    }
    session.emit("shmem-gups-zipf", table, "%12.3f");
  }

  {
    // Fetch-and-add round-trip latency: get + put (+ EXTOLL readback),
    // quantiles over every op.
    bench::SeriesTable table("metric", {"extoll", "ib"});
    std::vector<double> p50, p99;
    for (RmaBackend b : {RmaBackend::kExtoll, RmaBackend::kIb}) {
      const auto r = run(b, GupsMode::kAmo, 16, 0.0);
      p50.push_back(r.amo_p50_ns / 1000.0);
      p99.push_back(r.amo_p99_ns / 1000.0);
    }
    table.add_row("amo p50 [us]", p50);
    table.add_row("amo p99 [us]", p99);
    session.emit("shmem-gups-amo", table, "%12.3f");
  }

  return 0;
}
