// Tracked simulator-performance baseline.
//
// Measures the host-time cost of the three simulation hot paths (event
// engine, PTX-lite interpreter, sparse memory), the end-to-end
// wall-clock of the two heaviest figure sweeps, and the parallel-engine
// scaling matrix (ring workload, nodes x threads, every cell hard-gated
// to the threads=1 fingerprint), and writes the numbers to a JSON file
// (default BENCH_simcore.json) so CI can archive them and regressions
// show up as a diff, not an anecdote.
//
//   simcore_perf [--json=FILE]
//
// Workloads are fixed-size, so two runs on the same machine are directly
// comparable; compare ratios, not absolute numbers, across machines.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "gpu/assembler.h"
#include "gpu/device.h"
#include "mem/sparse_memory.h"
#include "obs/flow.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pcie/fabric.h"
#include "putget/extoll_experiments.h"
#include "putget/ring_workload.h"
#include "sim/simulation.h"
#include "sys/testbed.h"

namespace {

using namespace pg;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Event engine: steady-state schedule+dispatch cost per event. 512
/// self-rescheduling chains keep the heap at a realistic in-flight
/// depth (an experiment's concurrent transactions) instead of measuring
/// one giant fill-and-drain.
double bench_event_queue_ns(std::uint64_t* events_out) {
  constexpr std::uint64_t kEvents = 2'000'000;
  constexpr unsigned kChains = 512;
  sim::Simulation sim;
  std::uint64_t remaining = kEvents;
  struct Pump {
    sim::Simulation* sim;
    std::uint64_t* remaining;
    void operator()() const {
      if (*remaining == 0) return;
      --*remaining;
      sim->schedule(100, *this);
    }
  };
  const auto start = Clock::now();
  for (unsigned c = 0; c < kChains; ++c) {
    sim.schedule(static_cast<SimDuration>(c), Pump{&sim, &remaining});
  }
  sim.run();
  const double ns =
      std::chrono::duration<double, std::nano>(Clock::now() - start).count();
  *events_out = kEvents;
  return ns / static_cast<double>(kEvents);
}

/// Interpreter: a tight dependent ALU loop, the instruction mix the
/// device put/get library spends its time in between memory operations.
double bench_interpreter_instr_per_s(std::uint64_t* instrs_out) {
  gpu::Assembler a("alu_loop");
  const gpu::Reg n(8), x(9), p(10);
  a.movi(n, 0);
  a.movi(x, 1);
  a.bind("loop");
  a.muli(x, x, 3);
  a.addi(x, x, 7);
  a.xor_(x, x, n);
  a.addi(n, n, 1);
  a.setpi(gpu::Cmp::kLt, p, n, 10000);
  a.bra_if(p, "loop");
  a.exit();
  auto prog = a.finish();
  constexpr int kReps = 50;
  std::uint64_t instrs = 0;
  const auto start = Clock::now();
  for (int rep = 0; rep < kReps; ++rep) {
    sim::Simulation sim;
    mem::MemoryDomain memory;
    pcie::Fabric fabric(sim, memory, pcie::FabricConfig{});
    gpu::Gpu gpu(sim, fabric, memory, gpu::GpuConfig{}, "bench");
    bool done = false;
    gpu.launch({.program = &prog.value(), .params = {}},
               [&done] { done = true; });
    sim.run_until_condition([&] { return done; });
    instrs += gpu.counters().instructions_executed;
  }
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  *instrs_out = instrs;
  return static_cast<double>(instrs) / secs;
}

/// Sparse memory: streaming 8-byte stores then loads over a 64 MiB
/// region (page-allocating on the way in, cache-hitting on the way out).
double bench_memory_mb_per_s(std::uint64_t* bytes_out) {
  constexpr std::uint64_t kBytes = 64 * MiB;
  mem::SparseMemory m(kBytes);
  const auto start = Clock::now();
  for (std::uint64_t off = 0; off < kBytes; off += 8) {
    m.write_u64(off, off * 0x9e3779b97f4a7c15ull);
  }
  std::uint64_t sink = 0;
  for (std::uint64_t off = 0; off < kBytes; off += 8) {
    sink ^= m.read_u64(off);
  }
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  // Keep the reads alive without polluting stdout.
  if (sink == 0xdeadbeef) std::fprintf(stderr, "sink\n");
  *bytes_out = 2 * kBytes;
  return static_cast<double>(2 * kBytes) / (1024.0 * 1024.0) / secs;
}

/// End-to-end: the Fig. 1a latency sweep (all four transfer modes).
double bench_fig1_wall_ms() {
  using putget::TransferMode;
  const auto cfg = sys::extoll_testbed();
  const TransferMode modes[] = {
      TransferMode::kGpuDirect, TransferMode::kGpuPollDevice,
      TransferMode::kHostAssisted, TransferMode::kHostControlled};
  const auto start = Clock::now();
  for (std::uint32_t size : {4u, 16u, 64u, 256u, 1024u, 4096u, 16384u,
                             65536u, 262144u}) {
    const std::uint32_t iters = size >= 65536 ? 20 : 40;
    for (TransferMode mode : modes) {
      const auto r = putget::run_extoll_pingpong(cfg, mode, size, iters);
      if (!r.payload_ok) {
        std::fprintf(stderr, "fig1 workload FAILED at %u bytes\n", size);
        std::exit(1);
      }
    }
  }
  return ms_since(start);
}

/// End-to-end: the Fig. 2 message-rate sweep (all four variants).
double bench_fig2_wall_ms() {
  using putget::RateVariant;
  const auto cfg = sys::extoll_testbed();
  const RateVariant variants[] = {
      RateVariant::kBlocks, RateVariant::kKernels, RateVariant::kAssisted,
      RateVariant::kHostControlled};
  const auto start = Clock::now();
  for (std::uint32_t pairs : {1u, 2u, 4u, 8u, 16u, 24u, 32u}) {
    for (RateVariant v : variants) {
      const auto r = putget::run_extoll_msgrate(cfg, v, pairs, 40);
      if (r.msgs_per_s <= 0) {
        std::fprintf(stderr, "fig2 workload FAILED at %u pairs\n", pairs);
        std::exit(1);
      }
    }
  }
  return ms_since(start);
}

// --- Parallel-engine scaling matrix --------------------------------

// One cell of the PDES matrix: the ring halo-exchange workload at a
// given cluster size and worker count.
struct PdesCell {
  int nodes = 0;
  int threads = 0;
  double wall_ms = 0.0;
  double speedup = 1.0;  // vs the threads=1 cell of the same node count
  std::uint64_t checksum = 0;
  std::uint64_t events = 0;
};

// Small per-node state with many iterations puts the run in the
// communication/poll-dominated regime, where engine cost (scheduling,
// heap discipline, window synchronization) is the bill being measured
// — large cell counts shift time into modeled payload work that both
// engines pay identically and only dilutes the comparison.
constexpr std::uint32_t kPdesCells = 8;
constexpr std::uint32_t kPdesIters = 200;
// Timing reps per (nodes, threads) cell. Reps are interleaved across
// thread counts and the minimum wall per cell is reported — the
// standard estimator for "cost of the work itself" on a machine with
// background load (every source of noise only ever adds time).
constexpr int kPdesReps = 12;
// The link latency is the conservative lookahead, i.e. how much work a
// shard may run ahead of a synchronization fence. The scaling matrix
// uses a rack-scale 2 us link (vs the paper testbed's 400 ns
// board-to-board hop) so the windows are wide enough to measure engine
// scaling rather than barrier overhead.
constexpr SimDuration kPdesLinkLatency = microseconds(2);

/// One timed run of the N-node EXTOLL ring workload on `threads` engine
/// workers. The checksum/fingerprint of every run is hard-gated against
/// threads=1 by the caller: the parallel engine must be byte-equivalent,
/// not just fast.
PdesCell run_pdes_once(int nodes, int threads, bool classic_engine = false) {
  sys::ClusterConfig cfg = sys::extoll_testbed();
  cfg.num_nodes = nodes;
  cfg.topology = net::Topology::kRing;
  cfg.extoll_net.latency = kPdesLinkLatency;
  cfg.force_classic_engine = classic_engine;
  putget::RingConfig ring;
  ring.backend = putget::RingBackend::kExtoll;
  ring.cells_per_node = kPdesCells;
  ring.iterations = kPdesIters;
  ring.threads = threads;
  const auto start = Clock::now();
  const putget::RingResult r = putget::run_ring_halo_exchange(cfg, ring);
  PdesCell cell;
  cell.nodes = nodes;
  cell.threads = threads;
  cell.wall_ms = ms_since(start);
  cell.checksum = r.checksum;
  cell.events = r.events_scheduled;
  if (!r.verified || r.delivered != r.halo_messages) {
    std::fprintf(stderr, "pdes ring FAILED at nodes=%d threads=%d\n", nodes,
                 threads);
    std::exit(1);
  }
  return cell;
}

/// The full matrix, with the determinism gate: any run whose checksum or
/// event fingerprint differs from threads=1 fails the bench. Reps
/// alternate thread counts back-to-back so a load spike hits every
/// configuration equally instead of biasing one column.
std::vector<PdesCell> bench_pdes_matrix() {
  constexpr int kThreads[] = {1, 2, 4, 8};
  std::vector<PdesCell> cells;
  for (int nodes : {2, 4, 8}) {
    PdesCell best[4];
    for (int rep = 0; rep < kPdesReps; ++rep) {
      for (std::size_t t = 0; t < 4; ++t) {
        const PdesCell c = run_pdes_once(nodes, kThreads[t]);
        if (c.checksum != best[0].checksum || c.events != best[0].events) {
          if (rep == 0 && t == 0) {  // first run defines the fingerprint
            best[0] = c;
            continue;
          }
          std::fprintf(stderr,
                       "pdes DETERMINISM FAILURE at nodes=%d threads=%d: "
                       "checksum %llu vs %llu, events %llu vs %llu\n",
                       nodes, kThreads[t],
                       static_cast<unsigned long long>(c.checksum),
                       static_cast<unsigned long long>(best[0].checksum),
                       static_cast<unsigned long long>(c.events),
                       static_cast<unsigned long long>(best[0].events));
          std::exit(1);
        }
        if (best[t].nodes == 0 || c.wall_ms < best[t].wall_ms) best[t] = c;
      }
    }
    for (std::size_t t = 0; t < 4; ++t) {
      best[t].speedup = best[0].wall_ms / best[t].wall_ms;
      cells.push_back(best[t]);
    }
  }
  return cells;
}

// --- Traced scaling -------------------------------------------------

// One cell of the traced matrix: the same ring workload with every
// observability sink attached (trace + metrics + flows). Before the
// shard-aware sinks this configuration silently fell back to the
// sequential engine; that old behavior is kept measurable as the
// "classic" baseline row (force_classic_engine pins the single heap),
// and the gate below requires the serialized output of every sink to be
// byte-identical across the sharded thread counts.
struct TracedCell {
  const char* engine = "sharded";
  int threads = 0;
  double wall_ms = 0.0;
  double speedup = 1.0;  // vs the sequential classic-engine cell
};

constexpr int kTracedNodes = 8;
constexpr int kTracedReps = 7;

double run_pdes_traced_once(int threads, bool classic_engine,
                            std::string* trace_json,
                            std::string* metrics_json,
                            std::string* flow_json) {
  obs::TraceRecorder rec;
  obs::MetricsRegistry met;
  obs::FlowTable flows;
  obs::attach_recorder(&rec);
  obs::attach_metrics(&met);
  obs::attach_flows(&flows);
  const auto start = Clock::now();
  const PdesCell c = run_pdes_once(kTracedNodes, threads, classic_engine);
  const double wall = ms_since(start);
  (void)c;
  obs::attach_recorder(nullptr);
  obs::attach_metrics(nullptr);
  obs::attach_flows(nullptr);
  *trace_json = rec.to_json();
  *metrics_json = met.snapshot_json();
  *flow_json = flows.snapshot_json();
  return wall;
}

/// Traced matrix at the largest node count: the classic single-heap
/// engine (what an attached sink used to force) as the sequential
/// baseline, then the sharded engine at one and four workers. The
/// sharded cells are byte-parity gated against each other: a single
/// differing byte in any sink's JSON is a determinism failure, exactly
/// like a checksum mismatch in the untraced matrix. The classic cell is
/// timing-only — its single global tie-break counter orders
/// same-timestamp events differently, which is the very reason routed
/// clusters now shard at every thread count.
std::vector<TracedCell> bench_pdes_traced() {
  struct Cfg {
    const char* engine;
    int threads;
    bool classic;
  };
  constexpr Cfg kCfgs[] = {
      {"classic", 1, true}, {"sharded", 1, false}, {"sharded", 4, false}};
  std::string ref_trace, ref_metrics, ref_flows;
  TracedCell best[3];
  for (int rep = 0; rep < kTracedReps; ++rep) {
    for (std::size_t t = 0; t < 3; ++t) {
      std::string trace, metrics, flows;
      const double wall = run_pdes_traced_once(
          kCfgs[t].threads, kCfgs[t].classic, &trace, &metrics, &flows);
      if (!kCfgs[t].classic) {
        if (ref_trace.empty()) {
          ref_trace = trace;
          ref_metrics = metrics;
          ref_flows = flows;
        } else if (trace != ref_trace || metrics != ref_metrics ||
                   flows != ref_flows) {
          std::fprintf(stderr,
                       "pdes TRACED-DETERMINISM FAILURE at nodes=%d "
                       "threads=%d: sink output differs from threads=1\n",
                       kTracedNodes, kCfgs[t].threads);
          std::exit(1);
        }
      }
      if (best[t].threads == 0 || wall < best[t].wall_ms) {
        best[t].engine = kCfgs[t].engine;
        best[t].threads = kCfgs[t].threads;
        best[t].wall_ms = wall;
      }
    }
  }
  for (std::size_t t = 0; t < 3; ++t) {
    best[t].speedup = best[0].wall_ms / best[t].wall_ms;
  }
  return {best[0], best[1], best[2]};
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_simcore.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      std::printf("simcore-perf\n");
      for (const char* s : {"event queue", "interpreter", "sparse memory",
                            "fig1 latency sweep", "fig2 msgrate sweep",
                            "pdes scaling matrix",
                            "traced pdes scaling (byte-parity gated)"}) {
        std::printf("  %s\n", s);
      }
      return 0;
    } else {
      std::fprintf(stderr, "usage: %s [--list] [--json=FILE]\n", argv[0]);
      return 2;
    }
  }

  std::uint64_t events = 0, instrs = 0, bytes = 0;
  const double event_ns = bench_event_queue_ns(&events);
  const double instr_per_s = bench_interpreter_instr_per_s(&instrs);
  const double mem_mb_per_s = bench_memory_mb_per_s(&bytes);
  const double fig1_ms = bench_fig1_wall_ms();
  const double fig2_ms = bench_fig2_wall_ms();
  const std::vector<PdesCell> pdes = bench_pdes_matrix();
  const std::vector<TracedCell> traced = bench_pdes_traced();

  std::printf("simcore_perf - simulator host-performance baseline\n");
  std::printf("  event queue        %10.1f ns/event   (%llu events)\n",
              event_ns, static_cast<unsigned long long>(events));
  std::printf("  interpreter        %10.2f Minstr/s   (%llu instrs)\n",
              instr_per_s / 1e6, static_cast<unsigned long long>(instrs));
  std::printf("  sparse memory      %10.1f MB/s       (%llu bytes)\n",
              mem_mb_per_s, static_cast<unsigned long long>(bytes));
  std::printf("  fig1 latency sweep %10.1f ms wall\n", fig1_ms);
  std::printf("  fig2 msgrate sweep %10.1f ms wall\n", fig2_ms);
  std::printf("  pdes ring scaling (cells=%u iters=%u, checksum-gated)\n",
              kPdesCells, kPdesIters);
  for (const PdesCell& c : pdes) {
    std::printf("    nodes=%d threads=%d %9.1f ms wall  %5.2fx\n", c.nodes,
                c.threads, c.wall_ms, c.speedup);
  }
  std::printf("  traced pdes ring (nodes=%d, all sinks, byte-parity gated)\n",
              kTracedNodes);
  for (const TracedCell& c : traced) {
    std::printf("    %-7s threads=%d %9.1f ms wall  %5.2fx\n", c.engine,
                c.threads, c.wall_ms, c.speedup);
  }

  if (FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f,
                 "{\"bench\":\"simcore_perf\",\"metrics\":{"
                 "\"event_queue_ns_per_event\":%.3f,"
                 "\"interpreter_instr_per_s\":%.1f,"
                 "\"sparse_memory_mb_per_s\":%.1f,"
                 "\"fig1_extoll_latency_wall_ms\":%.3f,"
                 "\"fig2_extoll_msgrate_wall_ms\":%.3f},\n",
                 event_ns, instr_per_s, mem_mb_per_s, fig1_ms, fig2_ms);
    std::fprintf(f,
                 " \"pdes\":{\"workload\":\"ext_multinode_ring/extoll\","
                 "\"cells_per_node\":%u,\"iterations\":%u,\"reps\":%d,"
                 "\"link_latency_us\":%.1f,\"matrix\":[\n",
                 kPdesCells, kPdesIters, kPdesReps,
                 to_us(kPdesLinkLatency));
    for (std::size_t i = 0; i < pdes.size(); ++i) {
      const PdesCell& c = pdes[i];
      std::fprintf(f,
                   "  {\"nodes\":%d,\"threads\":%d,\"wall_ms\":%.3f,"
                   "\"speedup\":%.3f,\"checksum\":%llu,\"events\":%llu}%s\n",
                   c.nodes, c.threads, c.wall_ms, c.speedup,
                   static_cast<unsigned long long>(c.checksum),
                   static_cast<unsigned long long>(c.events),
                   i + 1 < pdes.size() ? "," : "");
    }
    std::fprintf(f, " ]},\n");
    std::fprintf(f,
                 " \"traced_pdes\":{\"workload\":\"ext_multinode_ring/extoll"
                 "+trace+metrics+flows\",\"nodes\":%d,\"reps\":%d,"
                 "\"byte_identical\":true,\"matrix\":[\n",
                 kTracedNodes, kTracedReps);
    for (std::size_t i = 0; i < traced.size(); ++i) {
      const TracedCell& c = traced[i];
      std::fprintf(f,
                   "  {\"engine\":\"%s\",\"threads\":%d,\"wall_ms\":%.3f,"
                   "\"speedup\":%.3f}%s\n",
                   c.engine, c.threads, c.wall_ms, c.speedup,
                   i + 1 < traced.size() ? "," : "");
    }
    std::fprintf(f, " ]}}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write '%s'\n", json_path.c_str());
    return 1;
  }
  return 0;
}
