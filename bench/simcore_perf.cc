// Simulator micro-benchmarks (google-benchmark): host-time cost of the
// event engine, the PTX-lite interpreter, the L2 model, and a full
// ping-pong experiment. These guard the simulator's own performance so
// the figure sweeps stay fast.
#include <benchmark/benchmark.h>

#include "gpu/assembler.h"
#include "gpu/device.h"
#include "gpu/l2cache.h"
#include "mem/memory_domain.h"
#include "pcie/fabric.h"
#include "putget/extoll_experiments.h"
#include "sim/simulation.h"
#include "sys/testbed.h"

namespace {

using namespace pg;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule(i * 10, [] {});
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_L2CacheAccess(benchmark::State& state) {
  gpu::L2Cache l2(gpu::L2Config{});
  std::uint64_t addr = mem::AddressMap::kGpuDramBase;
  for (auto _ : state) {
    benchmark::DoNotOptimize(l2.access(addr, false));
    addr += 32;
    if (addr > mem::AddressMap::kGpuDramBase + (1 << 22)) {
      addr = mem::AddressMap::kGpuDramBase;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L2CacheAccess);

void BM_InterpreterAluLoop(benchmark::State& state) {
  // A tight 10k-iteration ALU loop, interpreted.
  gpu::Assembler a("alu_loop");
  const gpu::Reg n(8), x(9), p(10);
  a.movi(n, 0);
  a.movi(x, 1);
  a.bind("loop");
  a.muli(x, x, 3);
  a.addi(x, x, 7);
  a.xor_(x, x, n);
  a.addi(n, n, 1);
  a.setpi(gpu::Cmp::kLt, p, n, 10000);
  a.bra_if(p, "loop");
  a.exit();
  auto prog = a.finish();
  for (auto _ : state) {
    sim::Simulation sim;
    mem::MemoryDomain memory;
    pcie::Fabric fabric(sim, memory, pcie::FabricConfig{});
    gpu::Gpu gpu(sim, fabric, memory, gpu::GpuConfig{}, "bench");
    bool done = false;
    gpu.launch({.program = &prog.value(), .params = {}},
               [&done] { done = true; });
    sim.run_until_condition([&] { return done; });
    benchmark::DoNotOptimize(gpu.counters().instructions_executed);
  }
  state.SetItemsProcessed(state.iterations() * 60000);  // ~6 instr x 10k
}
BENCHMARK(BM_InterpreterAluLoop);

void BM_ExtollPingPongExperiment(benchmark::State& state) {
  const auto cfg = sys::extoll_testbed();
  for (auto _ : state) {
    auto r = putget::run_extoll_pingpong(
        cfg, putget::TransferMode::kHostControlled, 1024, 10);
    benchmark::DoNotOptimize(r.half_rtt_us);
  }
}
BENCHMARK(BM_ExtollPingPongExperiment)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
