// Tracked simulator-performance baseline.
//
// Measures the host-time cost of the three simulation hot paths (event
// engine, PTX-lite interpreter, sparse memory) plus the end-to-end
// wall-clock of the two heaviest figure sweeps, and writes the numbers
// to a JSON file (default BENCH_simcore.json) so CI can archive them and
// regressions show up as a diff, not an anecdote.
//
//   simcore_perf [--json=FILE]
//
// Workloads are fixed-size, so two runs on the same machine are directly
// comparable; compare ratios, not absolute numbers, across machines.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "gpu/assembler.h"
#include "gpu/device.h"
#include "mem/sparse_memory.h"
#include "pcie/fabric.h"
#include "putget/extoll_experiments.h"
#include "sim/simulation.h"
#include "sys/testbed.h"

namespace {

using namespace pg;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Event engine: steady-state schedule+dispatch cost per event. 512
/// self-rescheduling chains keep the heap at a realistic in-flight
/// depth (an experiment's concurrent transactions) instead of measuring
/// one giant fill-and-drain.
double bench_event_queue_ns(std::uint64_t* events_out) {
  constexpr std::uint64_t kEvents = 2'000'000;
  constexpr unsigned kChains = 512;
  sim::Simulation sim;
  std::uint64_t remaining = kEvents;
  struct Pump {
    sim::Simulation* sim;
    std::uint64_t* remaining;
    void operator()() const {
      if (*remaining == 0) return;
      --*remaining;
      sim->schedule(100, *this);
    }
  };
  const auto start = Clock::now();
  for (unsigned c = 0; c < kChains; ++c) {
    sim.schedule(static_cast<SimDuration>(c), Pump{&sim, &remaining});
  }
  sim.run();
  const double ns =
      std::chrono::duration<double, std::nano>(Clock::now() - start).count();
  *events_out = kEvents;
  return ns / static_cast<double>(kEvents);
}

/// Interpreter: a tight dependent ALU loop, the instruction mix the
/// device put/get library spends its time in between memory operations.
double bench_interpreter_instr_per_s(std::uint64_t* instrs_out) {
  gpu::Assembler a("alu_loop");
  const gpu::Reg n(8), x(9), p(10);
  a.movi(n, 0);
  a.movi(x, 1);
  a.bind("loop");
  a.muli(x, x, 3);
  a.addi(x, x, 7);
  a.xor_(x, x, n);
  a.addi(n, n, 1);
  a.setpi(gpu::Cmp::kLt, p, n, 10000);
  a.bra_if(p, "loop");
  a.exit();
  auto prog = a.finish();
  constexpr int kReps = 50;
  std::uint64_t instrs = 0;
  const auto start = Clock::now();
  for (int rep = 0; rep < kReps; ++rep) {
    sim::Simulation sim;
    mem::MemoryDomain memory;
    pcie::Fabric fabric(sim, memory, pcie::FabricConfig{});
    gpu::Gpu gpu(sim, fabric, memory, gpu::GpuConfig{}, "bench");
    bool done = false;
    gpu.launch({.program = &prog.value(), .params = {}},
               [&done] { done = true; });
    sim.run_until_condition([&] { return done; });
    instrs += gpu.counters().instructions_executed;
  }
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  *instrs_out = instrs;
  return static_cast<double>(instrs) / secs;
}

/// Sparse memory: streaming 8-byte stores then loads over a 64 MiB
/// region (page-allocating on the way in, cache-hitting on the way out).
double bench_memory_mb_per_s(std::uint64_t* bytes_out) {
  constexpr std::uint64_t kBytes = 64 * MiB;
  mem::SparseMemory m(kBytes);
  const auto start = Clock::now();
  for (std::uint64_t off = 0; off < kBytes; off += 8) {
    m.write_u64(off, off * 0x9e3779b97f4a7c15ull);
  }
  std::uint64_t sink = 0;
  for (std::uint64_t off = 0; off < kBytes; off += 8) {
    sink ^= m.read_u64(off);
  }
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  // Keep the reads alive without polluting stdout.
  if (sink == 0xdeadbeef) std::fprintf(stderr, "sink\n");
  *bytes_out = 2 * kBytes;
  return static_cast<double>(2 * kBytes) / (1024.0 * 1024.0) / secs;
}

/// End-to-end: the Fig. 1a latency sweep (all four transfer modes).
double bench_fig1_wall_ms() {
  using putget::TransferMode;
  const auto cfg = sys::extoll_testbed();
  const TransferMode modes[] = {
      TransferMode::kGpuDirect, TransferMode::kGpuPollDevice,
      TransferMode::kHostAssisted, TransferMode::kHostControlled};
  const auto start = Clock::now();
  for (std::uint32_t size : {4u, 16u, 64u, 256u, 1024u, 4096u, 16384u,
                             65536u, 262144u}) {
    const std::uint32_t iters = size >= 65536 ? 20 : 40;
    for (TransferMode mode : modes) {
      const auto r = putget::run_extoll_pingpong(cfg, mode, size, iters);
      if (!r.payload_ok) {
        std::fprintf(stderr, "fig1 workload FAILED at %u bytes\n", size);
        std::exit(1);
      }
    }
  }
  return ms_since(start);
}

/// End-to-end: the Fig. 2 message-rate sweep (all four variants).
double bench_fig2_wall_ms() {
  using putget::RateVariant;
  const auto cfg = sys::extoll_testbed();
  const RateVariant variants[] = {
      RateVariant::kBlocks, RateVariant::kKernels, RateVariant::kAssisted,
      RateVariant::kHostControlled};
  const auto start = Clock::now();
  for (std::uint32_t pairs : {1u, 2u, 4u, 8u, 16u, 24u, 32u}) {
    for (RateVariant v : variants) {
      const auto r = putget::run_extoll_msgrate(cfg, v, pairs, 40);
      if (r.msgs_per_s <= 0) {
        std::fprintf(stderr, "fig2 workload FAILED at %u pairs\n", pairs);
        std::exit(1);
      }
    }
  }
  return ms_since(start);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_simcore.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      std::printf("simcore-perf\n");
      for (const char* s : {"event queue", "interpreter", "sparse memory",
                            "fig1 latency sweep", "fig2 msgrate sweep"}) {
        std::printf("  %s\n", s);
      }
      return 0;
    } else {
      std::fprintf(stderr, "usage: %s [--list] [--json=FILE]\n", argv[0]);
      return 2;
    }
  }

  std::uint64_t events = 0, instrs = 0, bytes = 0;
  const double event_ns = bench_event_queue_ns(&events);
  const double instr_per_s = bench_interpreter_instr_per_s(&instrs);
  const double mem_mb_per_s = bench_memory_mb_per_s(&bytes);
  const double fig1_ms = bench_fig1_wall_ms();
  const double fig2_ms = bench_fig2_wall_ms();

  std::printf("simcore_perf - simulator host-performance baseline\n");
  std::printf("  event queue        %10.1f ns/event   (%llu events)\n",
              event_ns, static_cast<unsigned long long>(events));
  std::printf("  interpreter        %10.2f Minstr/s   (%llu instrs)\n",
              instr_per_s / 1e6, static_cast<unsigned long long>(instrs));
  std::printf("  sparse memory      %10.1f MB/s       (%llu bytes)\n",
              mem_mb_per_s, static_cast<unsigned long long>(bytes));
  std::printf("  fig1 latency sweep %10.1f ms wall\n", fig1_ms);
  std::printf("  fig2 msgrate sweep %10.1f ms wall\n", fig2_ms);

  if (FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f,
                 "{\"bench\":\"simcore_perf\",\"metrics\":{"
                 "\"event_queue_ns_per_event\":%.3f,"
                 "\"interpreter_instr_per_s\":%.1f,"
                 "\"sparse_memory_mb_per_s\":%.1f,"
                 "\"fig1_extoll_latency_wall_ms\":%.3f,"
                 "\"fig2_extoll_msgrate_wall_ms\":%.3f}}\n",
                 event_ns, instr_per_s, mem_mb_per_s, fig1_ms, fig2_ms);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write '%s'\n", json_path.c_str());
    return 1;
  }
  return 0;
}
