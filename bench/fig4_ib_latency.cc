// Reproduces Fig. 4a: InfiniBand ping-pong latency vs transfer size.
//
// Paper shape: GPU-initiated latency is several times the host-initiated
// latency for small messages (the ~hundreds-of-instructions WQE
// generation on a single weak GPU thread); queue placement (bufOnGPU vs
// bufOnHost) makes only a small difference; all modes converge at large
// sizes.
#include <cstdio>

#include "bench_util.h"
#include "putget/ib_experiments.h"
#include "sys/testbed.h"

int main(int argc, char** argv) {
  if (pg::bench::handle_list_flag(argc, argv, "fig4a-ib-latency",
                                   {"dev2dev-bufOnGPU", "dev2dev-bufOnHost", "dev2dev-assisted", "dev2dev-hostControlled"})) {
    return 0;
  }
  pg::bench::Session session(argc, argv);
  using namespace pg;
  using putget::QueueLocation;
  using putget::TransferMode;
  bench::print_title("Fig 4a - InfiniBand ping-pong latency [us]",
                     "GPU-driven with queues on GPU or host memory");
  const auto cfg = sys::ib_testbed();
  bench::SeriesTable table(
      "size[B]", {"dev2dev-bufOnGPU", "dev2dev-bufOnHost",
                  "dev2dev-assisted", "dev2dev-hostControlled"});
  for (std::uint32_t size : {4u, 16u, 64u, 256u, 1024u, 4096u, 16384u,
                             65536u, 262144u}) {
    const std::uint32_t iters = size >= 65536 ? 15 : 30;
    struct Case {
      TransferMode mode;
      QueueLocation loc;
    };
    const Case cases[] = {
        {TransferMode::kGpuDirect, QueueLocation::kGpuMemory},
        {TransferMode::kGpuDirect, QueueLocation::kHostMemory},
        {TransferMode::kHostAssisted, QueueLocation::kHostMemory},
        {TransferMode::kHostControlled, QueueLocation::kHostMemory}};
    std::vector<double> row;
    for (const Case& c : cases) {
      const auto r = putget::run_ib_pingpong(cfg, c.mode, c.loc, size, iters);
      if (!r.payload_ok) {
        std::fprintf(stderr, "FAILED at %u bytes\n", size);
        return 1;
      }
      row.push_back(r.half_rtt_us);
    }
    table.add_row(bench::size_label(size), row);
  }
  session.emit("fig4a-ib-latency", table);
  return 0;
}
