// Reproduces Fig. 2: sustained EXTOLL message rate for 64-byte puts vs
// number of connection pairs.
//
// Paper shape: host-controlled is fastest; host-assisted sits below it
// (single serving thread) and above the GPU variants at low pair counts;
// dev2dev-blocks and dev2dev-kernels track each other and climb with the
// pair count (each block posts ONE put per kernel, so launch overhead is
// part of every message).
#include <cstdio>

#include "bench_util.h"
#include "putget/extoll_experiments.h"
#include "sys/testbed.h"

int main(int argc, char** argv) {
  if (pg::bench::handle_list_flag(argc, argv, "fig2-extoll-msgrate",
                                   {"dev2dev-blocks", "dev2dev-kernels", "dev2dev-assisted", "dev2dev-hostControlled"})) {
    return 0;
  }
  pg::bench::Session session(argc, argv);
  using namespace pg;
  using putget::RateVariant;
  bench::print_title("Fig 2 - EXTOLL message rate [msgs/s], 64 B puts",
                     "axis: connection pairs between the two nodes");
  const auto cfg = sys::extoll_testbed();
  const RateVariant variants[] = {
      RateVariant::kBlocks, RateVariant::kKernels, RateVariant::kAssisted,
      RateVariant::kHostControlled};
  bench::SeriesTable table("pairs", {"dev2dev-blocks", "dev2dev-kernels",
                                     "dev2dev-assisted",
                                     "dev2dev-hostControlled"});
  for (std::uint32_t pairs : {1u, 2u, 4u, 8u, 16u, 24u, 32u}) {
    const std::uint32_t msgs = 40;
    std::vector<double> row;
    for (RateVariant v : variants) {
      const auto r = putget::run_extoll_msgrate(cfg, v, pairs, msgs);
      if (r.msgs_per_s <= 0) {
        std::fprintf(stderr, "FAILED: %s at %u pairs\n",
                     putget::rate_variant_name(v), pairs);
        return 1;
      }
      row.push_back(r.msgs_per_s);
    }
    table.add_row(std::to_string(pairs), row);
  }
  session.emit("fig2-extoll-msgrate", table, "%12.0f");
  return 0;
}
