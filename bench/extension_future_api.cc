// Extension bench: the paper's Sec.-VI claims, demonstrated.
//
// The paper closes with three requirements for future GPU put/get
// interfaces. This bench implements two of them in the model and
// measures the improvement over the straight API ports the paper
// evaluated:
//
//  claim 2  warp-collaborative posting (8 lanes build the WQE together)
//           vs the ported single-thread ibv_post_send,
//  claim 3  EXTOLL notification queues relocated into GPU memory
//           vs the kernel-pinned system-memory queues.
#include <cstdio>

#include "bench_util.h"
#include "putget/extoll_experiments.h"
#include "putget/gpu_aware.h"
#include "putget/ib_experiments.h"
#include "sys/testbed.h"

int main(int argc, char** argv) {
  if (pg::bench::handle_list_flag(argc, argv, "extension-future-api",
                                   {"half RTT [us]", "posting sum [us]"})) {
    return 0;
  }
  using namespace pg;
  using putget::QueueLocation;
  using putget::TransferMode;
  bench::Session session(argc, argv);
  bench::SeriesTable jt("variant", {"half RTT [us]", "posting sum [us]"});
  bench::print_title("Extension - the paper's Sec. VI claims, implemented",
                     "GPU-aware interface prototypes vs. the ported APIs");

  // --- Claim 2: thread-collaborative posting (InfiniBand). ---------------
  std::printf("claim 2: warp-collaborative WQE generation (IB, 64 B "
              "ping-pong)\n");
  {
    const auto cfg = sys::ib_testbed();
    const auto classic = putget::run_ib_pingpong(
        cfg, TransferMode::kGpuDirect, QueueLocation::kGpuMemory, 64, 50);
    const auto warp = putget::run_ib_pingpong_warp(cfg, 64, 50);
    if (!classic.payload_ok || !warp.payload_ok) {
      std::fprintf(stderr, "FAILED\n");
      return 1;
    }
    std::printf("  single-thread post: latency %6.2f us, posting %6.2f us "
                "total\n",
                classic.half_rtt_us, classic.post_sum_us);
    std::printf("  warp-collaborative: latency %6.2f us, posting %6.2f us "
                "total\n",
                warp.half_rtt_us, warp.post_sum_us);
    std::printf("  -> posting cost x%.1f lower, latency x%.2f lower\n\n",
                classic.post_sum_us / warp.post_sum_us,
                classic.half_rtt_us / warp.half_rtt_us);
    jt.add_row("ib-single-thread", {classic.half_rtt_us,
                                    classic.post_sum_us});
    jt.add_row("ib-warp-collab", {warp.half_rtt_us, warp.post_sum_us});
  }

  // --- Claim 3: notification queues in GPU memory (EXTOLL). --------------
  std::printf("claim 3: EXTOLL notifications in GPU memory (64 B "
              "ping-pong)\n");
  {
    const auto cfg = sys::extoll_testbed();
    const auto sysq = putget::run_extoll_pingpong(
        cfg, TransferMode::kGpuDirect, 64, 50);
    const auto gpuq =
        putget::run_extoll_pingpong_gpu_notifications(cfg, 64, 50);
    if (!sysq.payload_ok || !gpuq.payload_ok) {
      std::fprintf(stderr, "FAILED\n");
      return 1;
    }
    std::printf("  queues in sysmem : latency %6.2f us, %llu sysmem reads\n",
                sysq.half_rtt_us,
                static_cast<unsigned long long>(
                    sysq.gpu0.sysmem_read_transactions));
    std::printf("  queues on GPU    : latency %6.2f us, %llu sysmem reads, "
                "%llu L2 hits\n",
                gpuq.half_rtt_us,
                static_cast<unsigned long long>(
                    gpuq.gpu0.sysmem_read_transactions),
                static_cast<unsigned long long>(gpuq.gpu0.l2_read_hits));
    std::printf("  -> latency x%.2f lower; notification polling became "
                "device-local L2 traffic\n\n",
                sysq.half_rtt_us / gpuq.half_rtt_us);
    jt.add_row("extoll-sysmem-notif", {sysq.half_rtt_us, 0.0});
    jt.add_row("extoll-gpumem-notif", {gpuq.half_rtt_us, 0.0});
  }

  std::printf("(claim 1 - minimal footprint - the relocated queues are the "
              "only device-memory\n cost: 2 queues x 1024 x 16 B per "
              "port.)\n");
  session.record("extension-future-api", jt);
  return 0;
}
