// Reproduces Fig. 5: sustained InfiniBand message rate for 64-byte RDMA
// writes vs number of QP connection pairs.
//
// Paper shape: per-QP parallelism lets the GPU variants scale almost
// linearly and approach host-initiated rates at many connections; the
// host-assisted variant plateaus beyond ~4 pairs because a single CPU
// thread serves every connection.
#include <cstdio>

#include "bench_util.h"
#include "putget/ib_experiments.h"
#include "sys/testbed.h"

int main(int argc, char** argv) {
  if (pg::bench::handle_list_flag(argc, argv, "fig5-ib-msgrate",
                                   {"dev2dev-blocks", "dev2dev-kernels", "dev2dev-assisted", "dev2dev-hostControlled"})) {
    return 0;
  }
  pg::bench::Session session(argc, argv);
  using namespace pg;
  using putget::RateVariant;
  bench::print_title("Fig 5 - InfiniBand message rate [msgs/s], 64 B writes",
                     "axis: QP connection pairs between the two nodes");
  const auto cfg = sys::ib_testbed();
  const RateVariant variants[] = {
      RateVariant::kBlocks, RateVariant::kKernels, RateVariant::kAssisted,
      RateVariant::kHostControlled};
  bench::SeriesTable table("pairs", {"dev2dev-blocks", "dev2dev-kernels",
                                     "dev2dev-assisted",
                                     "dev2dev-hostControlled"});
  for (std::uint32_t pairs : {1u, 2u, 4u, 8u, 16u, 24u, 32u}) {
    const std::uint32_t msgs = 40;
    std::vector<double> row;
    for (RateVariant v : variants) {
      const auto r = putget::run_ib_msgrate(cfg, v, pairs, msgs);
      if (r.msgs_per_s <= 0) {
        std::fprintf(stderr, "FAILED: %s at %u pairs\n",
                     putget::rate_variant_name(v), pairs);
        return 1;
      }
      row.push_back(r.msgs_per_s);
    }
    table.add_row(std::to_string(pairs), row);
  }
  session.emit("fig5-ib-msgrate", table, "%12.0f");
  return 0;
}
