// Ablation: per-post vs. build-time big-endian conversion in the
// device-side ibv_post_send.
//
// The paper: "the elements for the work requests have to be converted
// from little-endian to big-endian ... To optimize this for the GPU, we
// used static converted values where possible. However, since the source
// and destination address ... may change for every communication request,
// these values have to be converted for every request."
//
// This bench measures the device post_send instruction count with the
// optimization off (every field swapped per post) and on (constants
// pre-converted; only the addresses swapped at run time).
#include <cstdio>

#include "bench_util.h"
#include "putget/device_lib.h"
#include "putget/setup.h"
#include "sys/testbed.h"

namespace {

using namespace pg;

std::uint64_t count_post_instructions(bool preswap) {
  sys::Cluster cluster(sys::ib_testbed());
  sys::Node& n0 = cluster.node(0);
  auto pair = putget::IbPair::create(
      cluster, putget::QueueLocation::kGpuMemory, 64, 11);
  if (!pair.is_ok()) return 0;
  const mem::Addr table = putget::make_qp_table(n0, pair->ep0.qp().qpn, 8);
  const mem::Addr qpc =
      putget::make_qp_device_context(n0, pair->ep0, table, 8);

  putget::IbPostSendTemplate tmpl;
  tmpl.opcode = ib::WqeOpcode::kRdmaWrite;
  tmpl.signaled = true;
  tmpl.byte_len = 64;
  tmpl.lkey = pair->mr_send0.lkey;
  tmpl.rkey = pair->mr_recv1.rkey;
  tmpl.preswap_static_fields = preswap;

  const gpu::Reg qpc_r(9), laddr(10), raddr(11), wr_id(12);
  const gpu::Reg s0(23), s1(24), s2(25), s3(26), s4(27), s5(28);
  auto build = [&](bool with_post) {
    gpu::Assembler a(with_post ? "post" : "baseline");
    a.movi(qpc_r, static_cast<std::int64_t>(qpc));
    a.movi(laddr, static_cast<std::int64_t>(pair->send0));
    a.movi(raddr, static_cast<std::int64_t>(pair->recv1));
    a.movi(wr_id, 1);
    if (with_post) {
      putget::emit_ib_post_send(a, {qpc_r, laddr, raddr, wr_id}, tmpl, s0,
                                s1, s2, s3, s4, s5);
    }
    a.exit();
    auto p = a.finish();
    if (!p.is_ok()) std::abort();
    return std::move(p).value();
  };
  auto run = [&](const gpu::Program& prog) {
    const auto before = n0.gpu().counters_snapshot();
    bool done = false;
    n0.gpu().launch({.program = &prog, .params = {}}, [&] { done = true; });
    cluster.run_until([&] { return done; });
    cluster.sim().run_until(cluster.sim().now() + microseconds(200));
    return (n0.gpu().counters_snapshot() - before).instructions_executed;
  };
  const gpu::Program baseline = build(false);
  const gpu::Program with_post = build(true);
  const std::uint64_t base = run(baseline);
  return run(with_post) - base;
}

}  // namespace

int main(int argc, char** argv) {
  if (pg::bench::handle_list_flag(argc, argv, "ablation-wqe-swap",
                                   {"instructions"})) {
    return 0;
  }
  using namespace pg;
  bench::Session session(argc, argv);
  bench::print_title("Ablation - WQE endian-conversion strategy",
                     "device-side ibv_post_send instruction count");
  const std::uint64_t per_post = count_post_instructions(false);
  const std::uint64_t preswapped = count_post_instructions(true);
  std::printf("  convert every field per post : %llu instructions\n",
              static_cast<unsigned long long>(per_post));
  std::printf("  static fields pre-converted  : %llu instructions\n",
              static_cast<unsigned long long>(preswapped));
  std::printf("  -> the paper's optimization saves %lld instructions per "
              "post;\n     the dynamic address swaps remain, as the paper "
              "notes they must.\n",
              static_cast<long long>(per_post) -
                  static_cast<long long>(preswapped));
  bench::SeriesTable jt("strategy", {"instructions"});
  jt.add_row("per-post conversion", {static_cast<double>(per_post)});
  jt.add_row("pre-converted statics", {static_cast<double>(preswapped)});
  session.record("ablation-wqe-swap", jt);
  return 0;
}
