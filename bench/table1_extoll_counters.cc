// Reproduces Table I: GPU performance counters for the two polling
// approaches of the EXTOLL RMA API (ping-pong, 100 iterations, 1 KiB).
//
// "Device memory" polls the last received payload element; "system
// memory" queries the requester/completer notification queues. Paper
// reference values are printed alongside for comparison; absolute counts
// depend on the exact library code, so the shape (where traffic goes) is
// the reproduction target.
#include <cstdio>

#include "bench_util.h"
#include "putget/extoll_experiments.h"
#include "sys/testbed.h"

int main(int argc, char** argv) {
  if (pg::bench::handle_list_flag(argc, argv, "table1-extoll-counters",
                                   {"system memory", "device memory", "paper sys", "paper dev"})) {
    return 0;
  }
  using namespace pg;
  using putget::TransferMode;
  bench::Session session(argc, argv);
  bench::print_title("Table I - polling approaches, EXTOLL RMA",
                     "ping-pong, 100 iterations, 1 KiB payload");
  const auto cfg = sys::extoll_testbed();
  const auto sysmem =
      putget::run_extoll_pingpong(cfg, TransferMode::kGpuDirect, 1024, 100);
  const auto devmem = putget::run_extoll_pingpong(
      cfg, TransferMode::kGpuPollDevice, 1024, 100);
  if (!sysmem.payload_ok || !devmem.payload_ok) {
    std::fprintf(stderr, "FAILED: experiment did not converge\n");
    return 1;
  }
  struct RowDef {
    const char* metric;
    std::uint64_t sys;
    std::uint64_t dev;
    unsigned paper_sys;
    unsigned paper_dev;
  };
  const gpu::PerfCounters& s = sysmem.gpu0;
  const gpu::PerfCounters& d = devmem.gpu0;
  const RowDef rows[] = {
      {"sysmem reads (32B accesses)", s.sysmem_read_transactions,
       d.sysmem_read_transactions, 4368, 0},
      {"sysmem writes (32B accesses)", s.sysmem_write_transactions,
       d.sysmem_write_transactions, 2908, 303},
      {"globmem64 reads (accesses)", s.globmem_read64, d.globmem_read64, 0,
       1314},
      {"globmem64 writes (accesses)", s.globmem_write64, d.globmem_write64,
       500, 400},
      {"l2 read hits", s.l2_read_hits, d.l2_read_hits, 0, 3143},
      {"l2 read requests", s.l2_read_requests, d.l2_read_requests, 4822,
       2970},
      {"l2 write requests", s.l2_write_requests, d.l2_write_requests, 5268,
       404},
      {"memory accesses (r/w)", s.memory_accesses, d.memory_accesses, 6788,
       1714},
      {"instructions executed", s.instructions_executed,
       d.instructions_executed, 46413, 22491},
  };
  std::printf("%-32s %14s %14s   %12s %12s\n", "metric", "system memory",
              "device memory", "(paper sys)", "(paper dev)");
  for (const auto& r : rows) {
    std::printf("%-32s %14llu %14llu   %12u %12u\n", r.metric,
                static_cast<unsigned long long>(r.sys),
                static_cast<unsigned long long>(r.dev), r.paper_sys,
                r.paper_dev);
  }
  std::printf("\nlatency: system-memory polling %.2f us, device-memory "
              "polling %.2f us (half RTT)\n",
              sysmem.half_rtt_us, devmem.half_rtt_us);
  bench::SeriesTable jt("metric", {"system memory", "device memory",
                                   "paper sys", "paper dev"});
  for (const auto& r : rows) {
    jt.add_row(r.metric,
               {static_cast<double>(r.sys), static_cast<double>(r.dev),
                static_cast<double>(r.paper_sys),
                static_cast<double>(r.paper_dev)});
  }
  jt.add_row("half RTT latency [us]",
             {sysmem.half_rtt_us, devmem.half_rtt_us, 0.0, 0.0});
  session.record("table1-extoll-counters", jt);
  return 0;
}
