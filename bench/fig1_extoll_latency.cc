// Reproduces Fig. 1a: EXTOLL ping-pong latency vs transfer size for the
// four transfer modes.
//
// Paper shape: dev2dev-direct is roughly 2x dev2dev-hostControlled at
// small sizes (system-memory notification polling); dev2dev-pollOnGPU
// drops below dev2dev-assisted; all modes converge as the transfer
// itself dominates.
#include <cstdio>

#include "bench_util.h"
#include "putget/extoll_experiments.h"
#include "sys/testbed.h"

int main(int argc, char** argv) {
  if (pg::bench::handle_list_flag(argc, argv, "fig1a-extoll-latency",
                                   {"dev2dev-direct", "dev2dev-pollOnGPU", "dev2dev-assisted", "dev2dev-hostControlled"})) {
    return 0;
  }
  pg::bench::Session session(argc, argv);
  using namespace pg;
  using putget::TransferMode;
  bench::print_title(
      "Fig 1a - EXTOLL RMA ping-pong latency [us]",
      "modes: direct (notif polling), pollOnGPU, assisted, hostControlled");
  const auto cfg = sys::extoll_testbed();
  const TransferMode modes[] = {
      TransferMode::kGpuDirect, TransferMode::kGpuPollDevice,
      TransferMode::kHostAssisted, TransferMode::kHostControlled};
  bench::SeriesTable table("size[B]", {"dev2dev-direct", "dev2dev-pollOnGPU",
                                       "dev2dev-assisted",
                                       "dev2dev-hostControlled"});
  for (std::uint32_t size : {4u, 16u, 64u, 256u, 1024u, 4096u, 16384u,
                             65536u, 262144u}) {
    const std::uint32_t iters = size >= 65536 ? 20 : 40;
    std::vector<double> row;
    for (TransferMode mode : modes) {
      const auto r = putget::run_extoll_pingpong(cfg, mode, size, iters);
      if (!r.payload_ok) {
        std::fprintf(stderr, "FAILED: %s at %u bytes\n",
                     putget::transfer_mode_name(mode), size);
        return 1;
      }
      row.push_back(r.half_rtt_us);
    }
    table.add_row(bench::size_label(size), row);
  }
  session.emit("fig1a-extoll-latency", table);
  return 0;
}
