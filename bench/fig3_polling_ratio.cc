// Reproduces Fig. 3: the ratio of time spent polling for completion to
// time spent generating/posting the WR, for both EXTOLL polling
// approaches, across payload sizes.
//
// Paper shape: for small messages, system-memory notification polling
// costs ~10x the WR posting time while device-memory polling costs only
// a few times the posting time; for large messages the data transfer
// dominates the polling phase and the two approaches converge.
#include <cstdio>

#include "bench_util.h"
#include "putget/extoll_experiments.h"
#include "sys/testbed.h"

int main(int argc, char** argv) {
  if (pg::bench::handle_list_flag(argc, argv, "fig3-polling-ratio",
                                   {"system memory", "device memory"})) {
    return 0;
  }
  pg::bench::Session session(argc, argv);
  using namespace pg;
  using putget::TransferMode;
  bench::print_title(
      "Fig 3 - polling time / WR posting time, EXTOLL RMA",
      "system memory = notification queues; device memory = last element");
  const auto cfg = sys::extoll_testbed();
  bench::SeriesTable table("payload[B]",
                           {"system memory", "device memory"});
  for (std::uint32_t size :
       {4u, 16u, 64u, 256u, 1024u, 4096u, 16384u, 65536u, 262144u,
        1048576u, 4194304u, 16777216u, 67108864u}) {
    const std::uint32_t iters = size >= 1048576 ? 4 : 20;
    const auto sysm =
        putget::run_extoll_pingpong(cfg, TransferMode::kGpuDirect, size,
                                    iters);
    const auto devm = putget::run_extoll_pingpong(
        cfg, TransferMode::kGpuPollDevice, size, iters);
    if (!sysm.payload_ok || !devm.payload_ok) {
      std::fprintf(stderr, "FAILED at %u bytes\n", size);
      return 1;
    }
    const double sys_ratio =
        sysm.post_sum_us > 0 ? sysm.poll_sum_us / sysm.post_sum_us : 0;
    const double dev_ratio =
        devm.post_sum_us > 0 ? devm.poll_sum_us / devm.post_sum_us : 0;
    table.add_row(bench::size_label(size), {sys_ratio, dev_ratio});
  }
  session.emit("fig3-polling-ratio", table);
  return 0;
}
