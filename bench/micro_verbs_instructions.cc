// Reproduces Sec. V-B.3: the instruction cost of the GPU-resident verbs
// calls.
//
// Paper: 442 instructions to post a work request (ibv_post_send), 283
// for one successful completion poll (ibv_poll_cq). Our port is leaner
// than the full libibverbs/libmlx4 stack, so the absolute counts are
// lower; the reproduction target is the order of magnitude and the
// conclusion: hundreds of dependent instructions on a single weak GPU
// thread per posted message.
#include <cstdio>

#include "bench_util.h"
#include "putget/ib_experiments.h"
#include "sys/testbed.h"

int main(int argc, char** argv) {
  if (pg::bench::handle_list_flag(argc, argv, "micro-verbs-instructions",
                                   {"bufOnGPU instr", "bufOnGPU mem", "bufOnHost instr", "bufOnHost mem"})) {
    return 0;
  }
  using namespace pg;
  bench::Session session(argc, argv);
  bench::print_title("Sec V-B.3 - device-side verbs instruction counts",
                     "single ibv_post_send / single successful ibv_poll_cq");
  bench::SeriesTable jt("call", {"bufOnGPU instr", "bufOnGPU mem",
                                 "bufOnHost instr", "bufOnHost mem"});
  std::vector<double> post_row, poll_row;
  for (auto loc : {putget::QueueLocation::kGpuMemory,
                   putget::QueueLocation::kHostMemory}) {
    const auto counts =
        putget::measure_verbs_instruction_counts(sys::ib_testbed(), loc);
    std::printf("queues in %s:\n", putget::queue_location_name(loc));
    std::printf("  ibv_post_send : %6llu instructions, %4llu memory "
                "accesses   (paper: 442 instructions)\n",
                static_cast<unsigned long long>(counts.post_send_instructions),
                static_cast<unsigned long long>(
                    counts.post_send_mem_accesses));
    std::printf("  ibv_poll_cq   : %6llu instructions, %4llu memory "
                "accesses   (paper: 283 instructions)\n",
                static_cast<unsigned long long>(counts.poll_cq_instructions),
                static_cast<unsigned long long>(counts.poll_cq_mem_accesses));
    post_row.push_back(static_cast<double>(counts.post_send_instructions));
    post_row.push_back(static_cast<double>(counts.post_send_mem_accesses));
    poll_row.push_back(static_cast<double>(counts.poll_cq_instructions));
    poll_row.push_back(static_cast<double>(counts.poll_cq_mem_accesses));
  }
  jt.add_row("ibv_post_send", post_row);
  jt.add_row("ibv_poll_cq", poll_row);
  session.record("micro-verbs-instructions", jt);
  return 0;
}
