// Shared output helpers for the paper-reproduction benches.
//
// Every bench prints a self-describing table: the paper artifact it
// regenerates, the sweep axis, and one column per configuration. Output
// is whitespace-aligned for humans and trivially machine-parsable.
//
// Benches also accept optional observability flags:
//   --trace=FILE          write a Chrome trace-event JSON (open in
//                         Perfetto), including message-lifecycle flow
//                         arrows
//   --json=FILE           write every emitted table plus the metrics
//                         snapshot, the per-stage message-lifecycle
//                         breakdowns, and (when sampling is on) the
//                         telemetry time series
//   --metrics-every=US    sample sim-time telemetry every US simulated
//                         microseconds (multi-node benches forward
//                         Session::sample_every() into ClusterConfig)
//   --timeseries=FILE     write the sampled time series on its own, as
//                         deterministic JSON (CI byte-compares this
//                         across thread counts)
// Wrap main's body in a Session; with no flag given the sinks stay
// detached and the stdout table output is byte-identical to a build
// without observability.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"
#include "net/topology.h"
#include "obs/flow.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace pg::bench {

/// Standard `--list` support: when argv contains --list, prints the
/// bench's table name plus the series/modes it produces (one per
/// indented line, machine-parsable) and returns true — main should then
/// exit 0 without running anything. Call before constructing Session.
/// Benches that forward Session::threads() to their workloads pass
/// `threads = true` so the listing advertises the flag; multi-node
/// benches that honour Session::topology() pass `topology = true`.
inline bool handle_list_flag(int argc, char** argv, const std::string& bench,
                             const std::vector<std::string>& series,
                             bool threads = false, bool topology = false) {
  bool found = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list") == 0) found = true;
  }
  if (!found) return false;
  std::printf("%s\n", bench.c_str());
  for (const std::string& s : series) std::printf("  %s\n", s.c_str());
  if (threads) std::printf("  --threads=N (parallel event engine)\n");
  if (topology) {
    std::printf("  --topology=NAME (pair|ring|full-mesh|torus2d|fat-tree)\n");
  }
  if (threads || topology) {
    std::printf("  --metrics-every=US (sim-time telemetry sampling)\n");
  }
  return true;
}

inline void print_title(const std::string& title, const std::string& note) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("==============================================================\n");
}

class SeriesTable {
 public:
  SeriesTable(std::string axis, std::vector<std::string> columns)
      : axis_(std::move(axis)), columns_(std::move(columns)) {}

  void add_row(const std::string& x, const std::vector<double>& values) {
    rows_.push_back({x, values});
  }

  void print(const char* fmt = "%12.2f") const {
    std::printf("%-14s", axis_.c_str());
    for (const auto& c : columns_) std::printf(" %20s", c.c_str());
    std::printf("\n");
    for (const auto& row : rows_) {
      std::printf("%-14s", row.x.c_str());
      for (double v : row.values) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), fmt, v);
        std::printf(" %20s", buf);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  /// The same series as a JSON object:
  ///   {"axis":"size","columns":[...],"rows":[{"x":"64","values":[...]}]}
  void print_json(FILE* out) const {
    std::string s;
    s += "{\"axis\":";
    s += obs::json_string(axis_);
    s += ",\"columns\":[";
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      if (i) s += ',';
      s += obs::json_string(columns_[i]);
    }
    s += "],\"rows\":[";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (i) s += ',';
      s += "{\"x\":";
      s += obs::json_string(rows_[i].x);
      s += ",\"values\":[";
      for (std::size_t j = 0; j < rows_[i].values.size(); ++j) {
        if (j) s += ',';
        s += obs::json_double(rows_[i].values[j]);
      }
      s += "]}";
    }
    s += "]}";
    std::fputs(s.c_str(), out);
  }

 private:
  struct Row {
    std::string x;
    std::vector<double> values;
  };
  std::string axis_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

/// Scales `value` down by unit steps of 1024 while it divides evenly,
/// then renders it with the reached suffix ("", "K", "M", "G").
inline std::string format_scaled(std::uint64_t value) {
  static const char* const kSuffixes[] = {"", "K", "M"};
  std::size_t step = 0;
  while (step + 1 < sizeof(kSuffixes) / sizeof(kSuffixes[0]) &&
         value >= 1024 && value % 1024 == 0) {
    value /= 1024;
    ++step;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu%s",
                static_cast<unsigned long long>(value), kSuffixes[step]);
  return buf;
}

/// Human-readable byte size ("64", "4K", "1M").
inline std::string size_label(std::uint64_t bytes) {
  return format_scaled(bytes);
}

/// Per-bench observability session.
///
/// Parses --trace=FILE / --json=FILE from argv; when present, attaches a
/// TraceRecorder / MetricsRegistry for the duration of the bench and
/// writes the files in the destructor. `emit` both prints the table to
/// stdout (exactly like SeriesTable::print) and records it for the
/// --json output, so the text table and the JSON series always agree.
class Session {
 public:
  Session(int argc, char** argv)
      : wall_start_(std::chrono::steady_clock::now()) {
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--trace=", 8) == 0) {
        trace_path_ = a + 8;
      } else if (std::strncmp(a, "--json=", 7) == 0) {
        json_path_ = a + 7;
      } else if (std::strncmp(a, "--threads=", 10) == 0) {
        threads_ = std::atoi(a + 10);
        if (threads_ < 1) {
          std::fprintf(stderr, "ignoring '%s': thread count must be >= 1\n",
                       a);
          threads_ = 1;
        }
      } else if (std::strncmp(a, "--metrics-every=", 16) == 0) {
        const long us = std::atol(a + 16);
        if (us < 1) {
          std::fprintf(stderr,
                       "ignoring '%s': sample interval must be >= 1 "
                       "(simulated microseconds)\n",
                       a);
        } else {
          sample_every_ = microseconds(us);
        }
      } else if (std::strncmp(a, "--timeseries=", 13) == 0) {
        timeseries_path_ = a + 13;
      } else if (std::strncmp(a, "--topology=", 11) == 0) {
        auto t = net::parse_topology(a + 11);
        if (t.is_ok()) {
          topology_ = *t;
          has_topology_ = true;
        } else {
          std::fprintf(stderr, "ignoring '%s': %s\n", a,
                       t.status().message().c_str());
        }
      } else if (std::strcmp(a, "--list") == 0) {
        // Handled by handle_list_flag before the Session exists.
      } else {
        std::fprintf(stderr,
                     "unknown argument '%s' (expected --list, --threads=N, "
                     "--topology=NAME, --metrics-every=US, --trace=FILE, "
                     "--timeseries=FILE or --json=FILE)\n",
                     a);
      }
    }
    if (!trace_path_.empty()) {
      recorder_ = new obs::TraceRecorder();
      obs::attach_recorder(recorder_);
    }
    if (!trace_path_.empty() || !json_path_.empty()) {
      metrics_ = new obs::MetricsRegistry();
      obs::attach_metrics(metrics_);
      flows_ = new obs::FlowTable();
      obs::attach_flows(flows_);
    }
    // Sampling needs the sink; an explicit --timeseries=FILE or any
    // sink-attaching flag combined with --metrics-every= enables it.
    if (!timeseries_path_.empty() ||
        (sample_every_ > 0 && (!trace_path_.empty() || !json_path_.empty()))) {
      timeseries_ = new obs::TimeSeries();
      obs::attach_timeseries(timeseries_);
    }
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  ~Session() {
    if (recorder_) {
      if (FILE* f = std::fopen(trace_path_.c_str(), "w")) {
        recorder_->write_json(f);
        std::fclose(f);
      } else {
        std::fprintf(stderr, "cannot write trace file '%s'\n",
                     trace_path_.c_str());
      }
      obs::attach_recorder(nullptr);
      delete recorder_;
    }
    if (!json_path_.empty()) {
      if (FILE* f = std::fopen(json_path_.c_str(), "w")) {
        std::fputs("{\"tables\":[", f);
        for (std::size_t i = 0; i < tables_.size(); ++i) {
          if (i) std::fputc(',', f);
          std::fputs("{\"name\":", f);
          const std::string name = obs::json_string(tables_[i].first);
          std::fputs(name.c_str(), f);
          std::fputs(",\"series\":", f);
          tables_[i].second.print_json(f);
          std::fputc('}', f);
        }
        std::fputs("],\"metrics\":", f);
        if (metrics_) {
          metrics_->write_json(f);
        } else {
          std::fputs("{}", f);
        }
        // Per-stage message-lifecycle breakdowns (one group per unit).
        std::fputs(",\"lifecycle\":", f);
        if (flows_) {
          std::string s = flows_->snapshot_json();
          while (!s.empty() && s.back() == '\n') s.pop_back();
          std::fputs(s.c_str(), f);
        } else {
          std::fputs("{\"flows\":[]}", f);
        }
        // Sim-time telemetry samples (--metrics-every=).
        std::fputs(",\"timeseries\":", f);
        if (timeseries_) {
          std::string s = timeseries_->snapshot_json();
          while (!s.empty() && s.back() == '\n') s.pop_back();
          std::fputs(s.c_str(), f);
        } else {
          std::fputs("{\"timeseries\":[]}", f);
        }
        // Host wall-clock for the whole run: the cheap always-on signal
        // that the simulator itself has not regressed.
        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - wall_start_)
                .count();
        std::fprintf(f, ",\"wall_clock_ms\":%.3f", wall_ms);
        std::fputs("}\n", f);
        std::fclose(f);
      } else {
        std::fprintf(stderr, "cannot write json file '%s'\n",
                     json_path_.c_str());
      }
    }
    if (!timeseries_path_.empty() && timeseries_) {
      if (FILE* f = std::fopen(timeseries_path_.c_str(), "w")) {
        timeseries_->write_json(f);
        std::fclose(f);
      } else {
        std::fprintf(stderr, "cannot write timeseries file '%s'\n",
                     timeseries_path_.c_str());
      }
    }
    if (metrics_) {
      obs::attach_metrics(nullptr);
      delete metrics_;
    }
    if (flows_) {
      obs::attach_flows(nullptr);
      delete flows_;
    }
    if (timeseries_) {
      obs::attach_timeseries(nullptr);
      delete timeseries_;
    }
  }

  /// Prints the table to stdout and records a copy for --json.
  void emit(const std::string& name, const SeriesTable& table,
            const char* fmt = "%12.2f") {
    table.print(fmt);
    record(name, table);
  }

  /// Records a table for --json without printing (for benches with
  /// custom text output, e.g. the counter tables).
  void record(const std::string& name, const SeriesTable& table) {
    if (!json_path_.empty()) tables_.emplace_back(name, table);
  }

  /// Event-engine worker threads from --threads=N (default 1). Multi-
  /// node benches forward this into their workload configs; results —
  /// including trace / metrics / flow / time-series output, which runs
  /// shard-aware on the parallel engine — are byte-identical for any
  /// value.
  int threads() const { return threads_; }

  /// Telemetry sample interval from --metrics-every=US (0 = off).
  /// Multi-node benches forward this into ClusterConfig::sample_every.
  SimDuration sample_every() const { return sample_every_; }

  /// Wiring shape from --topology=NAME (parse_topology names). Benches
  /// that sweep multiple node counts pick counts valid for the shape.
  bool has_topology() const { return has_topology_; }
  net::Topology topology(net::Topology dflt) const {
    return has_topology_ ? topology_ : dflt;
  }

 private:
  std::chrono::steady_clock::time_point wall_start_;
  std::string trace_path_;
  std::string json_path_;
  std::string timeseries_path_;
  SimDuration sample_every_ = 0;
  int threads_ = 1;
  net::Topology topology_ = net::Topology::kRing;
  bool has_topology_ = false;
  obs::TraceRecorder* recorder_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::FlowTable* flows_ = nullptr;
  obs::TimeSeries* timeseries_ = nullptr;
  std::vector<std::pair<std::string, SeriesTable>> tables_;
};

}  // namespace pg::bench
