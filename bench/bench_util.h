// Shared output helpers for the paper-reproduction benches.
//
// Every bench prints a self-describing table: the paper artifact it
// regenerates, the sweep axis, and one column per configuration. Output
// is whitespace-aligned for humans and trivially machine-parsable.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace pg::bench {

inline void print_title(const std::string& title, const std::string& note) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("==============================================================\n");
}

class SeriesTable {
 public:
  SeriesTable(std::string axis, std::vector<std::string> columns)
      : axis_(std::move(axis)), columns_(std::move(columns)) {}

  void add_row(const std::string& x, const std::vector<double>& values) {
    rows_.push_back({x, values});
  }

  void print(const char* fmt = "%12.2f") const {
    std::printf("%-14s", axis_.c_str());
    for (const auto& c : columns_) std::printf(" %20s", c.c_str());
    std::printf("\n");
    for (const auto& row : rows_) {
      std::printf("%-14s", row.x.c_str());
      for (double v : row.values) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), fmt, v);
        std::printf(" %20s", buf);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

 private:
  struct Row {
    std::string x;
    std::vector<double> values;
  };
  std::string axis_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

/// Human-readable byte size ("64", "4K", "1M").
inline std::string size_label(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= 1024 * 1024 && bytes % (1024 * 1024) == 0) {
    std::snprintf(buf, sizeof(buf), "%lluM",
                  static_cast<unsigned long long>(bytes / (1024 * 1024)));
  } else if (bytes >= 1024 && bytes % 1024 == 0) {
    std::snprintf(buf, sizeof(buf), "%lluK",
                  static_cast<unsigned long long>(bytes / 1024));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace pg::bench
