// Extension: multi-hop topology sweep over the routed fabric.
//
// Runs the notifiable put/get layer over both backends (EXTOLL RMA and
// InfiniBand verbs) on the three routed wiring shapes — ring, 2-D
// torus, fat tree — at N in {4, 8, 16}, always between node 0 and the
// terminal the route tables place farthest from it, so the traffic
// genuinely relays through intermediate NICs (ring, torus) or switch
// vertices (fat tree). Reports one-way put latency, streaming put
// bandwidth and small-put message rate per (backend, topology, N), plus
// a per-link utilization/contention snapshot at N = 8.
//
// Every case ends with a hard frame-conservation check against the
// per-link counters: the sum of frames (and bytes) that crossed the
// links must equal frames originated + frames forwarded, and every
// originated frame must have been delivered. A mismatch means the
// fabric dropped or duplicated traffic and fails the bench.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/fabric.h"
#include "putget/notify.h"
#include "sys/testbed.h"

namespace {

using namespace pg;
using putget::Completion;
using putget::NotifyDomain;
using putget::RmaBackend;

constexpr std::uint64_t kRegionLen = 512 * 1024;
constexpr std::uint64_t kDataOff = 4096;  // clear of the reserved bytes
constexpr int kLatIters = 16;
constexpr int kBwPuts = 8;
constexpr std::uint32_t kBwBytes = 32 * 1024;
constexpr int kRatePuts = 64;

struct CaseResult {
  double lat_us = 0.0;
  double bw_gbs = 0.0;
  double mmsgs = 0.0;
  bool ok = false;
};

sys::Cluster::Backend cluster_backend(RmaBackend b) {
  return b == RmaBackend::kExtoll ? sys::Cluster::Backend::kExtoll
                                  : sys::Cluster::Backend::kIb;
}

/// One (topology, nodes, backend) case. `snapshot` additionally emits
/// the per-link utilization table through `session`.
CaseResult run_case(net::Topology topo, int nodes, RmaBackend backend,
                    int threads, bench::Session& session, bool snapshot,
                    const std::string& case_name) {
  CaseResult out;
  sys::ClusterConfig cfg = backend == RmaBackend::kExtoll
                               ? sys::extoll_testbed()
                               : sys::ib_testbed();
  cfg.num_nodes = nodes;
  cfg.topology = topo;
  cfg.threads = threads;
  cfg.sample_every = session.sample_every();
  sys::Cluster cluster(cfg);

  auto d = NotifyDomain::create(cluster, backend);
  if (!d.is_ok()) {
    std::fprintf(stderr, "%s: create: %s\n", case_name.c_str(),
                 d.status().to_string().c_str());
    return out;
  }
  NotifyDomain& domain = **d;
  std::vector<mem::Addr> bases;
  for (int n = 0; n < nodes; ++n) {
    bases.push_back(cluster.node(n).gpu_heap().alloc(kRegionLen, 4096));
  }
  if (Status s = domain.register_region(bases, kRegionLen); !s.is_ok()) {
    std::fprintf(stderr, "%s: register: %s\n", case_name.c_str(),
                 s.to_string().c_str());
    return out;
  }

  // The terminal the routes place farthest from node 0 — the sweep's
  // whole point is that this is > 1 hop away on every shape at N >= 8.
  int far = 1, far_hops = 0;
  for (int dst = 1; dst < nodes; ++dst) {
    const int h = net::path_hops(cluster.fabric_plan(), cluster.routes(), 0,
                                 dst);
    if (h > far_hops) {
      far_hops = h;
      far = dst;
    }
  }

  // One-way put latency: notification puts, one in flight at a time.
  const SimTime t_lat = cluster.now();
  for (int i = 0; i < kLatIters; ++i) {
    auto op = domain.post_put(0, far, bases[0] + kDataOff,
                              bases[far] + kDataOff, 8,
                              Completion::kNotification);
    if (!op.is_ok() || !domain.wait_notified(far, i + 1)) {
      std::fprintf(stderr, "%s: latency put %d failed\n", case_name.c_str(),
                   i);
      return out;
    }
  }
  out.lat_us = to_us(cluster.now() - t_lat) / kLatIters;

  // Streaming bandwidth: back-to-back large payload-poll puts, then
  // quiet(0) for remote completion of the whole train.
  const SimTime t_bw = cluster.now();
  for (int i = 0; i < kBwPuts; ++i) {
    const std::uint64_t off = kDataOff + static_cast<std::uint64_t>(i) * kBwBytes;
    auto op = domain.post_put(0, far, bases[0] + off, bases[far] + off,
                              kBwBytes, Completion::kPayloadPoll);
    if (!op.is_ok()) {
      std::fprintf(stderr, "%s: bandwidth put %d failed\n",
                   case_name.c_str(), i);
      return out;
    }
  }
  if (Status s = domain.quiet(0); !s.is_ok()) {
    std::fprintf(stderr, "%s: quiet: %s\n", case_name.c_str(),
                 s.to_string().c_str());
    return out;
  }
  // bytes per nanosecond == GB/s.
  out.bw_gbs = static_cast<double>(kBwPuts) * kBwBytes / to_ns(cluster.now() - t_bw);

  // Small-put message rate: a train of 8-byte payload-poll puts.
  const SimTime t_rate = cluster.now();
  for (int i = 0; i < kRatePuts; ++i) {
    const std::uint64_t off = kDataOff + static_cast<std::uint64_t>(i) * 8;
    auto op = domain.post_put(0, far, bases[0] + off, bases[far] + off, 8,
                              Completion::kPayloadPoll);
    if (!op.is_ok()) {
      std::fprintf(stderr, "%s: rate put %d failed\n", case_name.c_str(), i);
      return out;
    }
  }
  if (Status s = domain.quiet(0); !s.is_ok()) {
    std::fprintf(stderr, "%s: quiet: %s\n", case_name.c_str(),
                 s.to_string().c_str());
    return out;
  }
  // messages per microsecond == Mmsg/s.
  out.mmsgs = static_cast<double>(kRatePuts) / to_us(cluster.now() - t_rate);

  // Frame conservation against the per-link counters (hard check).
  const sys::Cluster::Backend which = cluster_backend(backend);
  const net::FabricTotals totals = cluster.fabric_totals(which);
  const std::vector<sys::Cluster::LinkReport> reports =
      cluster.link_reports(which);
  std::uint64_t link_frames = 0, link_bytes = 0;
  for (const auto& r : reports) {
    link_frames += r.frames;
    link_bytes += r.bytes;
  }
  if (link_frames != totals.frames_originated + totals.frames_forwarded ||
      link_bytes != totals.bytes_originated + totals.bytes_forwarded ||
      totals.frames_delivered != totals.frames_originated ||
      totals.bytes_delivered != totals.bytes_originated) {
    std::fprintf(
        stderr,
        "%s: conservation violated: links %llu frames / %llu B, "
        "originated %llu / %llu B, forwarded %llu / %llu B, delivered "
        "%llu / %llu B\n",
        case_name.c_str(), static_cast<unsigned long long>(link_frames),
        static_cast<unsigned long long>(link_bytes),
        static_cast<unsigned long long>(totals.frames_originated),
        static_cast<unsigned long long>(totals.bytes_originated),
        static_cast<unsigned long long>(totals.frames_forwarded),
        static_cast<unsigned long long>(totals.bytes_forwarded),
        static_cast<unsigned long long>(totals.frames_delivered),
        static_cast<unsigned long long>(totals.bytes_delivered));
    return out;
  }
  if (far_hops > 1 && totals.frames_forwarded == 0) {
    std::fprintf(stderr, "%s: %d-hop path but nothing was forwarded\n",
                 case_name.c_str(), far_hops);
    return out;
  }

  if (snapshot) {
    bench::SeriesTable links("link", {"util[%]", "frames", "fwd", "stalls"});
    for (const auto& r : reports) {
      links.add_row(r.label,
                    {100.0 * r.utilization, static_cast<double>(r.frames),
                     static_cast<double>(r.forwarded_frames),
                     static_cast<double>(r.stalls)});
    }
    session.emit(case_name + "-links", links, "%12.3f");
  }
  cluster.publish_link_metrics();
  out.ok = true;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::handle_list_flag(
          argc, argv, "ext-multihop-sweep",
          {"extoll lat[us]", "extoll bw[GB/s]", "extoll Mmsg/s",
           "ib lat[us]", "ib bw[GB/s]", "ib Mmsg/s"},
          /*threads=*/true)) {
    return 0;
  }
  bench::Session session(argc, argv);
  bench::print_title(
      "Extension - multi-hop sweep, EXTOLL vs InfiniBand",
      "node 0 <-> farthest terminal over the routed fabric; per-link "
      "utilization snapshot at N=8; frame conservation hard-checked");

  const net::Topology topos[] = {net::Topology::kRing,
                                 net::Topology::kTorus2D,
                                 net::Topology::kFatTree};
  const RmaBackend backends[] = {RmaBackend::kExtoll, RmaBackend::kIb};
  for (net::Topology topo : topos) {
    bench::SeriesTable table(
        "nodes", {"extoll lat[us]", "extoll bw[GB/s]", "extoll Mmsg/s",
                  "ib lat[us]", "ib bw[GB/s]", "ib Mmsg/s"});
    for (int nodes : {4, 8, 16}) {
      std::vector<double> row;
      for (RmaBackend backend : backends) {
        const std::string case_name =
            std::string("multihop-") + net::topology_name(topo) + "-n" +
            std::to_string(nodes) + "-" + putget::rma_backend_name(backend);
        const CaseResult r =
            run_case(topo, nodes, backend, session.threads(), session,
                     /*snapshot=*/nodes == 8, case_name);
        if (!r.ok) {
          std::fprintf(stderr, "FAILED: %s\n", case_name.c_str());
          return 1;
        }
        row.push_back(r.lat_us);
        row.push_back(r.bw_gbs);
        row.push_back(r.mmsgs);
      }
      table.add_row(std::to_string(nodes), row);
    }
    session.emit(std::string("multihop-") + net::topology_name(topo), table);
  }
  return 0;
}
