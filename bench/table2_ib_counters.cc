// Reproduces Table II: GPU performance counters for the two
// buffer-placement approaches of the InfiniBand Verbs API (ping-pong,
// 100 iterations, 1 KiB).
//
// "Buffer on host" places the send/completion queues in host memory;
// "buffer on GPU" places them in device memory. Paper reference values
// printed alongside.
#include <cstdio>

#include "bench_util.h"
#include "putget/ib_experiments.h"
#include "sys/testbed.h"

int main(int argc, char** argv) {
  if (pg::bench::handle_list_flag(argc, argv, "table2-ib-counters",
                                   {"buffer on host", "buffer on GPU", "paper host", "paper gpu"})) {
    return 0;
  }
  using namespace pg;
  using putget::QueueLocation;
  using putget::TransferMode;
  bench::Session session(argc, argv);
  bench::print_title("Table II - buffer placement, InfiniBand Verbs",
                     "ping-pong, 100 iterations, 1 KiB payload");
  const auto cfg = sys::ib_testbed();
  const auto on_host = putget::run_ib_pingpong(
      cfg, TransferMode::kGpuDirect, QueueLocation::kHostMemory, 1024, 100);
  const auto on_gpu = putget::run_ib_pingpong(
      cfg, TransferMode::kGpuDirect, QueueLocation::kGpuMemory, 1024, 100);
  if (!on_host.payload_ok || !on_gpu.payload_ok) {
    std::fprintf(stderr, "FAILED: experiment did not converge\n");
    return 1;
  }
  const gpu::PerfCounters& h = on_host.gpu0;
  const gpu::PerfCounters& g = on_gpu.gpu0;
  struct RowDef {
    const char* metric;
    std::uint64_t host;
    std::uint64_t gpu;
    unsigned paper_host;
    unsigned paper_gpu;
  };
  const RowDef rows[] = {
      {"sysmem reads (32B accesses)", h.sysmem_read_transactions,
       g.sysmem_read_transactions, 772, 80},
      {"sysmem writes (32B accesses)", h.sysmem_write_transactions,
       g.sysmem_write_transactions, 670, 316},
      {"l2 read misses", h.l2_read_misses, g.l2_read_misses, 999, 1405},
      {"l2 read hits", h.l2_read_hits, g.l2_read_hits, 16647, 14575},
      {"l2 read requests", h.l2_read_requests, g.l2_read_requests, 16657,
       15110},
      {"l2 write requests", h.l2_write_requests, g.l2_write_requests, 1990,
       1885},
      {"memory accesses (r/w)", h.memory_accesses, g.memory_accesses, 59937,
       58905},
      {"instructions executed", h.instructions_executed,
       g.instructions_executed, 123297, 110463},
  };
  std::printf("%-32s %14s %14s   %12s %12s\n", "metric", "buffer on host",
              "buffer on GPU", "(paper host)", "(paper gpu)");
  for (const auto& r : rows) {
    std::printf("%-32s %14llu %14llu   %12u %12u\n", r.metric,
                static_cast<unsigned long long>(r.host),
                static_cast<unsigned long long>(r.gpu), r.paper_host,
                r.paper_gpu);
  }
  std::printf("\nper iteration: %llu instructions, %llu memory accesses "
              "(paper: ~1,100 and ~600)\n",
              static_cast<unsigned long long>(h.instructions_executed / 100),
              static_cast<unsigned long long>(h.memory_accesses / 100));
  std::printf("latency: bufOnHost %.2f us, bufOnGPU %.2f us (half RTT)\n",
              on_host.half_rtt_us, on_gpu.half_rtt_us);
  bench::SeriesTable jt("metric", {"buffer on host", "buffer on GPU",
                                   "paper host", "paper gpu"});
  for (const auto& r : rows) {
    jt.add_row(r.metric,
               {static_cast<double>(r.host), static_cast<double>(r.gpu),
                static_cast<double>(r.paper_host),
                static_cast<double>(r.paper_gpu)});
  }
  jt.add_row("half RTT latency [us]",
             {on_host.half_rtt_us, on_gpu.half_rtt_us, 0.0, 0.0});
  session.record("table2-ib-counters", jt);
  return 0;
}
