// Ablation: the PCIe peer-to-peer read model.
//
// The paper attributes both the ~1 GB/s bandwidth ceiling and the >1 MiB
// drop to "a PCIe peer-to-peer issue" in the fabric, not the NICs. This
// ablation disables the P2P read model (ideal GPU read service) and
// re-runs the EXTOLL host-controlled bandwidth sweep: with the model off,
// the ceiling rises to the link rate and the drop disappears -
// demonstrating the drop comes from the modelled fabric pathology.
#include <cstdio>

#include "bench_util.h"
#include "putget/extoll_experiments.h"
#include "sys/testbed.h"

int main(int argc, char** argv) {
  if (pg::bench::handle_list_flag(argc, argv, "ablation-p2p",
                                   {"p2p model ON", "p2p model OFF"})) {
    return 0;
  }
  pg::bench::Session session(argc, argv);
  using namespace pg;
  using putget::TransferMode;
  bench::print_title("Ablation - PCIe peer-to-peer read model",
                     "EXTOLL host-controlled streaming bandwidth [MB/s]");
  auto with_model = sys::extoll_testbed();
  auto without_model = with_model;
  without_model.node.gpu.p2p.model_enabled = false;
  bench::SeriesTable table("size[B]", {"p2p model ON", "p2p model OFF"});
  for (std::uint32_t size :
       {65536u, 262144u, 524288u, 1048576u, 2097152u, 4194304u}) {
    const std::uint32_t messages =
        std::max<std::uint32_t>(6, (16u << 20) / size);
    const auto on = putget::run_extoll_bandwidth(
        with_model, TransferMode::kHostControlled, size, messages);
    const auto off = putget::run_extoll_bandwidth(
        without_model, TransferMode::kHostControlled, size, messages);
    if (!on.payload_ok || !off.payload_ok) {
      std::fprintf(stderr, "FAILED at %u bytes\n", size);
      return 1;
    }
    table.add_row(bench::size_label(size), {on.mb_per_s, off.mb_per_s});
  }
  session.emit("ablation-p2p", table);
  std::printf("With the model ON, bandwidth degrades past 1M (page-context"
              " thrash);\nwith it OFF the curve is flat at the link/core"
              " limit - the drop is the fabric, not the NIC.\n");
  return 0;
}
