file(REMOVE_RECURSE
  "CMakeFiles/pg_mem.dir/address_map.cc.o"
  "CMakeFiles/pg_mem.dir/address_map.cc.o.d"
  "CMakeFiles/pg_mem.dir/registration.cc.o"
  "CMakeFiles/pg_mem.dir/registration.cc.o.d"
  "CMakeFiles/pg_mem.dir/sparse_memory.cc.o"
  "CMakeFiles/pg_mem.dir/sparse_memory.cc.o.d"
  "libpg_mem.a"
  "libpg_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pg_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
