file(REMOVE_RECURSE
  "libpg_mem.a"
)
