# Empty compiler generated dependencies file for pg_mem.
# This may be replaced when dependencies are built.
