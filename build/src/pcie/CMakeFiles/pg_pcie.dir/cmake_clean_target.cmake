file(REMOVE_RECURSE
  "libpg_pcie.a"
)
