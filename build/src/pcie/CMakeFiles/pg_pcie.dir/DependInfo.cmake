
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pcie/dma.cc" "src/pcie/CMakeFiles/pg_pcie.dir/dma.cc.o" "gcc" "src/pcie/CMakeFiles/pg_pcie.dir/dma.cc.o.d"
  "/root/repo/src/pcie/fabric.cc" "src/pcie/CMakeFiles/pg_pcie.dir/fabric.cc.o" "gcc" "src/pcie/CMakeFiles/pg_pcie.dir/fabric.cc.o.d"
  "/root/repo/src/pcie/p2p.cc" "src/pcie/CMakeFiles/pg_pcie.dir/p2p.cc.o" "gcc" "src/pcie/CMakeFiles/pg_pcie.dir/p2p.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pg_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
