file(REMOVE_RECURSE
  "CMakeFiles/pg_pcie.dir/dma.cc.o"
  "CMakeFiles/pg_pcie.dir/dma.cc.o.d"
  "CMakeFiles/pg_pcie.dir/fabric.cc.o"
  "CMakeFiles/pg_pcie.dir/fabric.cc.o.d"
  "CMakeFiles/pg_pcie.dir/p2p.cc.o"
  "CMakeFiles/pg_pcie.dir/p2p.cc.o.d"
  "libpg_pcie.a"
  "libpg_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pg_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
