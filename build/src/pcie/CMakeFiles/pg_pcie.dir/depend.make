# Empty dependencies file for pg_pcie.
# This may be replaced when dependencies are built.
