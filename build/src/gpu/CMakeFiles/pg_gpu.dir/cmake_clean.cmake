file(REMOVE_RECURSE
  "CMakeFiles/pg_gpu.dir/assembler.cc.o"
  "CMakeFiles/pg_gpu.dir/assembler.cc.o.d"
  "CMakeFiles/pg_gpu.dir/counters.cc.o"
  "CMakeFiles/pg_gpu.dir/counters.cc.o.d"
  "CMakeFiles/pg_gpu.dir/device.cc.o"
  "CMakeFiles/pg_gpu.dir/device.cc.o.d"
  "CMakeFiles/pg_gpu.dir/l2cache.cc.o"
  "CMakeFiles/pg_gpu.dir/l2cache.cc.o.d"
  "CMakeFiles/pg_gpu.dir/program.cc.o"
  "CMakeFiles/pg_gpu.dir/program.cc.o.d"
  "CMakeFiles/pg_gpu.dir/text_asm.cc.o"
  "CMakeFiles/pg_gpu.dir/text_asm.cc.o.d"
  "CMakeFiles/pg_gpu.dir/warp.cc.o"
  "CMakeFiles/pg_gpu.dir/warp.cc.o.d"
  "libpg_gpu.a"
  "libpg_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pg_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
