
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/assembler.cc" "src/gpu/CMakeFiles/pg_gpu.dir/assembler.cc.o" "gcc" "src/gpu/CMakeFiles/pg_gpu.dir/assembler.cc.o.d"
  "/root/repo/src/gpu/counters.cc" "src/gpu/CMakeFiles/pg_gpu.dir/counters.cc.o" "gcc" "src/gpu/CMakeFiles/pg_gpu.dir/counters.cc.o.d"
  "/root/repo/src/gpu/device.cc" "src/gpu/CMakeFiles/pg_gpu.dir/device.cc.o" "gcc" "src/gpu/CMakeFiles/pg_gpu.dir/device.cc.o.d"
  "/root/repo/src/gpu/l2cache.cc" "src/gpu/CMakeFiles/pg_gpu.dir/l2cache.cc.o" "gcc" "src/gpu/CMakeFiles/pg_gpu.dir/l2cache.cc.o.d"
  "/root/repo/src/gpu/program.cc" "src/gpu/CMakeFiles/pg_gpu.dir/program.cc.o" "gcc" "src/gpu/CMakeFiles/pg_gpu.dir/program.cc.o.d"
  "/root/repo/src/gpu/text_asm.cc" "src/gpu/CMakeFiles/pg_gpu.dir/text_asm.cc.o" "gcc" "src/gpu/CMakeFiles/pg_gpu.dir/text_asm.cc.o.d"
  "/root/repo/src/gpu/warp.cc" "src/gpu/CMakeFiles/pg_gpu.dir/warp.cc.o" "gcc" "src/gpu/CMakeFiles/pg_gpu.dir/warp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pg_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/pg_pcie.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
