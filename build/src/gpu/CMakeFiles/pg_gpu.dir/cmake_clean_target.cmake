file(REMOVE_RECURSE
  "libpg_gpu.a"
)
