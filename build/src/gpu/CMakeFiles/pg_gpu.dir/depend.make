# Empty dependencies file for pg_gpu.
# This may be replaced when dependencies are built.
