file(REMOVE_RECURSE
  "libpg_sim.a"
)
