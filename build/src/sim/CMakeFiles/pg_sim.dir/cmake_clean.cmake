file(REMOVE_RECURSE
  "CMakeFiles/pg_sim.dir/event_queue.cc.o"
  "CMakeFiles/pg_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/pg_sim.dir/simulation.cc.o"
  "CMakeFiles/pg_sim.dir/simulation.cc.o.d"
  "libpg_sim.a"
  "libpg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
