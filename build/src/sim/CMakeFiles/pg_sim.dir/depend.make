# Empty dependencies file for pg_sim.
# This may be replaced when dependencies are built.
