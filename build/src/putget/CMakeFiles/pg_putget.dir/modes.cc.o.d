src/putget/CMakeFiles/pg_putget.dir/modes.cc.o: \
 /root/repo/src/putget/modes.cc /usr/include/stdc-predef.h \
 /root/repo/src/putget/modes.h
