# Empty dependencies file for pg_putget.
# This may be replaced when dependencies are built.
