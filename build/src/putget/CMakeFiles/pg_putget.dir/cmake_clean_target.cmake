file(REMOVE_RECURSE
  "libpg_putget.a"
)
