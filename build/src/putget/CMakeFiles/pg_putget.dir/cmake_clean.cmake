file(REMOVE_RECURSE
  "CMakeFiles/pg_putget.dir/device_lib.cc.o"
  "CMakeFiles/pg_putget.dir/device_lib.cc.o.d"
  "CMakeFiles/pg_putget.dir/extoll_experiments.cc.o"
  "CMakeFiles/pg_putget.dir/extoll_experiments.cc.o.d"
  "CMakeFiles/pg_putget.dir/extoll_host.cc.o"
  "CMakeFiles/pg_putget.dir/extoll_host.cc.o.d"
  "CMakeFiles/pg_putget.dir/gpu_aware.cc.o"
  "CMakeFiles/pg_putget.dir/gpu_aware.cc.o.d"
  "CMakeFiles/pg_putget.dir/ib_experiments.cc.o"
  "CMakeFiles/pg_putget.dir/ib_experiments.cc.o.d"
  "CMakeFiles/pg_putget.dir/ib_host.cc.o"
  "CMakeFiles/pg_putget.dir/ib_host.cc.o.d"
  "CMakeFiles/pg_putget.dir/modes.cc.o"
  "CMakeFiles/pg_putget.dir/modes.cc.o.d"
  "CMakeFiles/pg_putget.dir/setup.cc.o"
  "CMakeFiles/pg_putget.dir/setup.cc.o.d"
  "libpg_putget.a"
  "libpg_putget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pg_putget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
