file(REMOVE_RECURSE
  "libpg_common.a"
)
