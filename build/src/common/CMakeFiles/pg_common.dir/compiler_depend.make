# Empty compiler generated dependencies file for pg_common.
# This may be replaced when dependencies are built.
