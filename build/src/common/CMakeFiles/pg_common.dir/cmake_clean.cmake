file(REMOVE_RECURSE
  "CMakeFiles/pg_common.dir/log.cc.o"
  "CMakeFiles/pg_common.dir/log.cc.o.d"
  "CMakeFiles/pg_common.dir/status.cc.o"
  "CMakeFiles/pg_common.dir/status.cc.o.d"
  "libpg_common.a"
  "libpg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
