file(REMOVE_RECURSE
  "CMakeFiles/pg_sys.dir/cluster.cc.o"
  "CMakeFiles/pg_sys.dir/cluster.cc.o.d"
  "CMakeFiles/pg_sys.dir/node.cc.o"
  "CMakeFiles/pg_sys.dir/node.cc.o.d"
  "CMakeFiles/pg_sys.dir/testbed.cc.o"
  "CMakeFiles/pg_sys.dir/testbed.cc.o.d"
  "libpg_sys.a"
  "libpg_sys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pg_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
