file(REMOVE_RECURSE
  "libpg_sys.a"
)
