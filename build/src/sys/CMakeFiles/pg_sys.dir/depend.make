# Empty dependencies file for pg_sys.
# This may be replaced when dependencies are built.
