# Empty dependencies file for pg_extoll.
# This may be replaced when dependencies are built.
