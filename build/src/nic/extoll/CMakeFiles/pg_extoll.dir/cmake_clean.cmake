file(REMOVE_RECURSE
  "CMakeFiles/pg_extoll.dir/rma_unit.cc.o"
  "CMakeFiles/pg_extoll.dir/rma_unit.cc.o.d"
  "libpg_extoll.a"
  "libpg_extoll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pg_extoll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
