file(REMOVE_RECURSE
  "libpg_extoll.a"
)
