file(REMOVE_RECURSE
  "libpg_ib.a"
)
