file(REMOVE_RECURSE
  "CMakeFiles/pg_ib.dir/hca.cc.o"
  "CMakeFiles/pg_ib.dir/hca.cc.o.d"
  "libpg_ib.a"
  "libpg_ib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pg_ib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
