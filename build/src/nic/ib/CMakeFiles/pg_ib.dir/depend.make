# Empty dependencies file for pg_ib.
# This may be replaced when dependencies are built.
