file(REMOVE_RECURSE
  "CMakeFiles/fig4_ib_latency.dir/fig4_ib_latency.cc.o"
  "CMakeFiles/fig4_ib_latency.dir/fig4_ib_latency.cc.o.d"
  "fig4_ib_latency"
  "fig4_ib_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ib_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
