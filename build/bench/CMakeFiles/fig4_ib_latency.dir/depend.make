# Empty dependencies file for fig4_ib_latency.
# This may be replaced when dependencies are built.
