# Empty dependencies file for fig4_ib_bandwidth.
# This may be replaced when dependencies are built.
