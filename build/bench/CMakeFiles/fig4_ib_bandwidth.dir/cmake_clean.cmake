file(REMOVE_RECURSE
  "CMakeFiles/fig4_ib_bandwidth.dir/fig4_ib_bandwidth.cc.o"
  "CMakeFiles/fig4_ib_bandwidth.dir/fig4_ib_bandwidth.cc.o.d"
  "fig4_ib_bandwidth"
  "fig4_ib_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ib_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
