file(REMOVE_RECURSE
  "CMakeFiles/fig5_ib_msgrate.dir/fig5_ib_msgrate.cc.o"
  "CMakeFiles/fig5_ib_msgrate.dir/fig5_ib_msgrate.cc.o.d"
  "fig5_ib_msgrate"
  "fig5_ib_msgrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_ib_msgrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
