# Empty compiler generated dependencies file for fig5_ib_msgrate.
# This may be replaced when dependencies are built.
