file(REMOVE_RECURSE
  "CMakeFiles/fig1_extoll_latency.dir/fig1_extoll_latency.cc.o"
  "CMakeFiles/fig1_extoll_latency.dir/fig1_extoll_latency.cc.o.d"
  "fig1_extoll_latency"
  "fig1_extoll_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_extoll_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
