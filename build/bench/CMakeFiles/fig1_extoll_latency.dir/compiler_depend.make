# Empty compiler generated dependencies file for fig1_extoll_latency.
# This may be replaced when dependencies are built.
