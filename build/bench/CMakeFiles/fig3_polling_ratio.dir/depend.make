# Empty dependencies file for fig3_polling_ratio.
# This may be replaced when dependencies are built.
