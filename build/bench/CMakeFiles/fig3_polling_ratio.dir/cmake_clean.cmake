file(REMOVE_RECURSE
  "CMakeFiles/fig3_polling_ratio.dir/fig3_polling_ratio.cc.o"
  "CMakeFiles/fig3_polling_ratio.dir/fig3_polling_ratio.cc.o.d"
  "fig3_polling_ratio"
  "fig3_polling_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_polling_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
