
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig3_polling_ratio.cc" "bench/CMakeFiles/fig3_polling_ratio.dir/fig3_polling_ratio.cc.o" "gcc" "bench/CMakeFiles/fig3_polling_ratio.dir/fig3_polling_ratio.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/putget/CMakeFiles/pg_putget.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/pg_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/pg_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/extoll/CMakeFiles/pg_extoll.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/ib/CMakeFiles/pg_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/pg_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pg_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
