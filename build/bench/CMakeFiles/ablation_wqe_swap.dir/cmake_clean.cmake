file(REMOVE_RECURSE
  "CMakeFiles/ablation_wqe_swap.dir/ablation_wqe_swap.cc.o"
  "CMakeFiles/ablation_wqe_swap.dir/ablation_wqe_swap.cc.o.d"
  "ablation_wqe_swap"
  "ablation_wqe_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wqe_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
