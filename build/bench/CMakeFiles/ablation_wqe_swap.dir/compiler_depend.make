# Empty compiler generated dependencies file for ablation_wqe_swap.
# This may be replaced when dependencies are built.
