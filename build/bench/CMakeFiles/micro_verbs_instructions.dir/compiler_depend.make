# Empty compiler generated dependencies file for micro_verbs_instructions.
# This may be replaced when dependencies are built.
