file(REMOVE_RECURSE
  "CMakeFiles/micro_verbs_instructions.dir/micro_verbs_instructions.cc.o"
  "CMakeFiles/micro_verbs_instructions.dir/micro_verbs_instructions.cc.o.d"
  "micro_verbs_instructions"
  "micro_verbs_instructions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_verbs_instructions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
