# Empty compiler generated dependencies file for table1_extoll_counters.
# This may be replaced when dependencies are built.
