file(REMOVE_RECURSE
  "CMakeFiles/table1_extoll_counters.dir/table1_extoll_counters.cc.o"
  "CMakeFiles/table1_extoll_counters.dir/table1_extoll_counters.cc.o.d"
  "table1_extoll_counters"
  "table1_extoll_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_extoll_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
