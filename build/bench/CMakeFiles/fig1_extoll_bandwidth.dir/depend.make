# Empty dependencies file for fig1_extoll_bandwidth.
# This may be replaced when dependencies are built.
