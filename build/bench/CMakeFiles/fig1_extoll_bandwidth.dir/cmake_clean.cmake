file(REMOVE_RECURSE
  "CMakeFiles/fig1_extoll_bandwidth.dir/fig1_extoll_bandwidth.cc.o"
  "CMakeFiles/fig1_extoll_bandwidth.dir/fig1_extoll_bandwidth.cc.o.d"
  "fig1_extoll_bandwidth"
  "fig1_extoll_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_extoll_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
