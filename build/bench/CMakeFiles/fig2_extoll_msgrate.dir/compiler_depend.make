# Empty compiler generated dependencies file for fig2_extoll_msgrate.
# This may be replaced when dependencies are built.
