file(REMOVE_RECURSE
  "CMakeFiles/fig2_extoll_msgrate.dir/fig2_extoll_msgrate.cc.o"
  "CMakeFiles/fig2_extoll_msgrate.dir/fig2_extoll_msgrate.cc.o.d"
  "fig2_extoll_msgrate"
  "fig2_extoll_msgrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_extoll_msgrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
