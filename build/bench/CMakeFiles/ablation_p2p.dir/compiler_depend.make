# Empty compiler generated dependencies file for ablation_p2p.
# This may be replaced when dependencies are built.
