file(REMOVE_RECURSE
  "CMakeFiles/ablation_p2p.dir/ablation_p2p.cc.o"
  "CMakeFiles/ablation_p2p.dir/ablation_p2p.cc.o.d"
  "ablation_p2p"
  "ablation_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
