# Empty dependencies file for table2_ib_counters.
# This may be replaced when dependencies are built.
