file(REMOVE_RECURSE
  "CMakeFiles/table2_ib_counters.dir/table2_ib_counters.cc.o"
  "CMakeFiles/table2_ib_counters.dir/table2_ib_counters.cc.o.d"
  "table2_ib_counters"
  "table2_ib_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_ib_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
