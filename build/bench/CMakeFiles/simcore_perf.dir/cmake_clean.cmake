file(REMOVE_RECURSE
  "CMakeFiles/simcore_perf.dir/simcore_perf.cc.o"
  "CMakeFiles/simcore_perf.dir/simcore_perf.cc.o.d"
  "simcore_perf"
  "simcore_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcore_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
