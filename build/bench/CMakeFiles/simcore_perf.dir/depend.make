# Empty dependencies file for simcore_perf.
# This may be replaced when dependencies are built.
