file(REMOVE_RECURSE
  "CMakeFiles/extension_future_api.dir/extension_future_api.cc.o"
  "CMakeFiles/extension_future_api.dir/extension_future_api.cc.o.d"
  "extension_future_api"
  "extension_future_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_future_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
