# Empty dependencies file for extension_future_api.
# This may be replaced when dependencies are built.
