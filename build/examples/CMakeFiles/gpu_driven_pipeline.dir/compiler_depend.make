# Empty compiler generated dependencies file for gpu_driven_pipeline.
# This may be replaced when dependencies are built.
