file(REMOVE_RECURSE
  "CMakeFiles/gpu_driven_pipeline.dir/gpu_driven_pipeline.cpp.o"
  "CMakeFiles/gpu_driven_pipeline.dir/gpu_driven_pipeline.cpp.o.d"
  "gpu_driven_pipeline"
  "gpu_driven_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_driven_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
