# Empty compiler generated dependencies file for explorer.
# This may be replaced when dependencies are built.
