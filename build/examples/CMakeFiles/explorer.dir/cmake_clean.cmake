file(REMOVE_RECURSE
  "CMakeFiles/explorer.dir/explorer.cpp.o"
  "CMakeFiles/explorer.dir/explorer.cpp.o.d"
  "explorer"
  "explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
