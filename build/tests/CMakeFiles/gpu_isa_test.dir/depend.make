# Empty dependencies file for gpu_isa_test.
# This may be replaced when dependencies are built.
