file(REMOVE_RECURSE
  "CMakeFiles/gpu_isa_test.dir/gpu_isa_test.cc.o"
  "CMakeFiles/gpu_isa_test.dir/gpu_isa_test.cc.o.d"
  "gpu_isa_test"
  "gpu_isa_test.pdb"
  "gpu_isa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_isa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
