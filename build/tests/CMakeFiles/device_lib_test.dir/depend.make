# Empty dependencies file for device_lib_test.
# This may be replaced when dependencies are built.
