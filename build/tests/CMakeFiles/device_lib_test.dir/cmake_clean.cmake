file(REMOVE_RECURSE
  "CMakeFiles/device_lib_test.dir/device_lib_test.cc.o"
  "CMakeFiles/device_lib_test.dir/device_lib_test.cc.o.d"
  "device_lib_test"
  "device_lib_test.pdb"
  "device_lib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_lib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
