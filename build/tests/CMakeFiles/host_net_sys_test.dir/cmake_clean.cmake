file(REMOVE_RECURSE
  "CMakeFiles/host_net_sys_test.dir/host_net_sys_test.cc.o"
  "CMakeFiles/host_net_sys_test.dir/host_net_sys_test.cc.o.d"
  "host_net_sys_test"
  "host_net_sys_test.pdb"
  "host_net_sys_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_net_sys_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
