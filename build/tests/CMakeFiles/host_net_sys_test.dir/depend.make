# Empty dependencies file for host_net_sys_test.
# This may be replaced when dependencies are built.
