# Empty compiler generated dependencies file for extoll_test.
# This may be replaced when dependencies are built.
