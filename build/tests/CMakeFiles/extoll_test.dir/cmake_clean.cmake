file(REMOVE_RECURSE
  "CMakeFiles/extoll_test.dir/extoll_test.cc.o"
  "CMakeFiles/extoll_test.dir/extoll_test.cc.o.d"
  "extoll_test"
  "extoll_test.pdb"
  "extoll_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extoll_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
