file(REMOVE_RECURSE
  "CMakeFiles/ib_test.dir/ib_test.cc.o"
  "CMakeFiles/ib_test.dir/ib_test.cc.o.d"
  "ib_test"
  "ib_test.pdb"
  "ib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
