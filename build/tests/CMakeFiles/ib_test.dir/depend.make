# Empty dependencies file for ib_test.
# This may be replaced when dependencies are built.
