# Empty compiler generated dependencies file for ib_experiments_test.
# This may be replaced when dependencies are built.
