file(REMOVE_RECURSE
  "CMakeFiles/ib_experiments_test.dir/ib_experiments_test.cc.o"
  "CMakeFiles/ib_experiments_test.dir/ib_experiments_test.cc.o.d"
  "ib_experiments_test"
  "ib_experiments_test.pdb"
  "ib_experiments_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ib_experiments_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
