file(REMOVE_RECURSE
  "CMakeFiles/extoll_experiments_test.dir/extoll_experiments_test.cc.o"
  "CMakeFiles/extoll_experiments_test.dir/extoll_experiments_test.cc.o.d"
  "extoll_experiments_test"
  "extoll_experiments_test.pdb"
  "extoll_experiments_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extoll_experiments_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
