# Empty compiler generated dependencies file for gpu_device_test.
# This may be replaced when dependencies are built.
