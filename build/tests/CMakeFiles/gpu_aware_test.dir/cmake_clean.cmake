file(REMOVE_RECURSE
  "CMakeFiles/gpu_aware_test.dir/gpu_aware_test.cc.o"
  "CMakeFiles/gpu_aware_test.dir/gpu_aware_test.cc.o.d"
  "gpu_aware_test"
  "gpu_aware_test.pdb"
  "gpu_aware_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_aware_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
