# Empty dependencies file for gpu_aware_test.
# This may be replaced when dependencies are built.
