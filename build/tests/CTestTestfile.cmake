# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/pcie_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_isa_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_device_test[1]_include.cmake")
include("/root/repo/build/tests/extoll_test[1]_include.cmake")
include("/root/repo/build/tests/ib_test[1]_include.cmake")
include("/root/repo/build/tests/extoll_experiments_test[1]_include.cmake")
include("/root/repo/build/tests/ib_experiments_test[1]_include.cmake")
include("/root/repo/build/tests/device_lib_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_aware_test[1]_include.cmake")
include("/root/repo/build/tests/host_net_sys_test[1]_include.cmake")
include("/root/repo/build/tests/text_asm_test[1]_include.cmake")
